// Package prov records derivation provenance for the FVN runtimes: a
// compact, append-only graph whose nodes are tuple versions, rule
// firings, message deliveries, fault events, and retractions, and whose
// edges are antecedent references. The centralized engine and the
// distributed runtime append entries as they derive; `fvn why`, the
// chaos campaign's root-cause reports, and (eventually) counting-based
// incremental deletion read the graph back.
//
// The representation follows the same discipline as internal/obs: a nil
// *Recorder is the valid disabled recorder, every method on it is a
// no-op behind a single nil check, and the enabled path stores
// fixed-size entries in one arena slice with all strings interned to
// int32 ids — no per-derivation map or per-entry allocation beyond the
// amortized arena growth. A Recorder is single-goroutine state, like
// the evaluator that feeds it.
package prov

import (
	"repro/internal/obs"
	"repro/internal/value"
)

// ID names one entry of a recorder's arena. 0 is "no entry": the
// disabled recorder returns it from every record call, and antecedent
// lists never contain it.
type ID int32

// Kind classifies an entry.
type Kind uint8

// The entry kinds.
const (
	// KindTuple is one version of a tuple materialized at a node. Its
	// single antecedent is the rule firing or message delivery that
	// produced it; no antecedent marks a base fact (injection, topology
	// load, refresh re-insert).
	KindTuple Kind = iota + 1
	// KindRule is one rule firing; its antecedents are the tuple
	// versions the join consumed, in plan-step order.
	KindRule
	// KindMessage is one network delivery: From→Node carrying Label
	// (the predicate), stamped with the traversed link epoch (N) and
	// the logical send order (Seq). Its antecedent is the sender-side
	// rule firing.
	KindMessage
	// KindFault is a fault-injection leaf: link_down, link_up, crash,
	// restart, or partition.
	KindFault
	// KindRetract marks the removal of a tuple version (expiry, link
	// failure, aggregate-group drain). Antecedents: the retracted
	// version, then the causing entry (a KindFault for fault-driven
	// retractions) when known.
	KindRetract
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindTuple:
		return "tuple"
	case KindRule:
		return "rule"
	case KindMessage:
		return "message"
	case KindFault:
		return "fault"
	case KindRetract:
		return "retract"
	default:
		return "none"
	}
}

// Entry is one provenance record. All strings are interned ids
// resolvable via Recorder.Str; antecedents live in a shared arena
// addressed by (antOff, antLen).
type Entry struct {
	Kind Kind
	T    float64 // simulated time (0 for centralized evaluation)
	Node int32   // owning node (message: destination; fault: near end)
	From int32   // message source / fault far end; 0 when n/a
	Lbl  int32   // predicate, rule label, fault kind, or retract reason
	Tup  int32   // rendered tuple; 0 when n/a
	N    int64   // message: link epoch; link_up: cost; partition: id
	Seq  int64   // message: logical send order

	antOff, antLen int32
}

// Recorder accumulates a provenance graph. The zero-cost disabled form
// is the nil pointer; construct enabled recorders with New.
type Recorder struct {
	strs []string         // interned strings; strs[0] = ""
	ids  map[string]int32 // string -> interned id

	entries []Entry // entries[0] is the zero sentinel (ID 0 = none)
	ants    []ID    // shared antecedent arena

	// cur maps (node, pred, tuple content) to the latest live tuple
	// version, so rule firings can resolve their scanned tuples to
	// entry ids at emit time.
	cur map[string]ID
	// retracted maps a tuple version to the KindRetract entry that
	// removed it — the hook root-cause analysis follows from a stale
	// tuple's lineage to the fault that killed its support.
	retracted map[ID]ID
	faults    []ID // all KindFault entries, in record order

	keyBuf []byte
}

// New returns an empty enabled recorder.
func New() *Recorder {
	return &Recorder{
		strs:      []string{""},
		ids:       map[string]int32{"": 0},
		entries:   make([]Entry, 1),
		cur:       map[string]ID{},
		retracted: map[ID]ID{},
	}
}

// Enabled reports whether the recorder records (nil = disabled).
func (r *Recorder) Enabled() bool { return r != nil }

func (r *Recorder) intern(s string) int32 {
	if id, ok := r.ids[s]; ok {
		return id
	}
	id := int32(len(r.strs))
	r.strs = append(r.strs, s)
	r.ids[s] = id
	return id
}

// Str resolves an interned string id.
func (r *Recorder) Str(id int32) string {
	if r == nil || id < 0 || int(id) >= len(r.strs) {
		return ""
	}
	return r.strs[id]
}

// Len returns the number of recorded entries.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.entries) - 1
}

// Get returns the entry with the given id (the zero Entry for 0 or
// out-of-range ids).
func (r *Recorder) Get(id ID) Entry {
	if r == nil || id <= 0 || int(id) >= len(r.entries) {
		return Entry{}
	}
	return r.entries[id]
}

// Ants returns the antecedent ids of an entry. The slice aliases the
// arena; callers must not mutate it.
func (r *Recorder) Ants(id ID) []ID {
	e := r.Get(id)
	if e.antLen == 0 {
		return nil
	}
	return r.ants[e.antOff : e.antOff+int32(e.antLen)]
}

// Faults returns every KindFault entry recorded so far, in order.
func (r *Recorder) Faults() []ID {
	if r == nil {
		return nil
	}
	return r.faults
}

// RetractionOf returns the KindRetract entry that removed the given
// tuple version, if any.
func (r *Recorder) RetractionOf(id ID) (ID, bool) {
	if r == nil {
		return 0, false
	}
	rid, ok := r.retracted[id]
	return rid, ok
}

func (r *Recorder) append(e Entry, ants []ID) ID {
	e.antOff = int32(len(r.ants))
	for _, a := range ants {
		if a != 0 {
			r.ants = append(r.ants, a)
			e.antLen++
		}
	}
	id := ID(len(r.entries))
	r.entries = append(r.entries, e)
	return id
}

func (r *Recorder) curKey(node, pred string, tup value.Tuple) []byte {
	b := r.keyBuf[:0]
	b = append(b, node...)
	b = append(b, 0)
	b = append(b, pred...)
	b = append(b, 0)
	b = tup.AppendKey(b)
	r.keyBuf = b
	return b
}

// Tuple records a tuple version materialized at node, caused by a rule
// firing or message delivery (cause 0 = base fact), and makes it the
// current version for (node, pred, content).
func (r *Recorder) Tuple(t float64, node, pred string, tup value.Tuple, cause ID) ID {
	if r == nil {
		return 0
	}
	id := r.append(Entry{
		Kind: KindTuple, T: t,
		Node: r.intern(node), Lbl: r.intern(pred), Tup: r.intern(tup.String()),
	}, []ID{cause})
	r.cur[string(r.curKey(node, pred, tup))] = id
	return id
}

// Rule records one rule firing at node with the given antecedent tuple
// versions (zeros are skipped). The ants slice is copied into the
// arena; callers may reuse it.
func (r *Recorder) Rule(t float64, node, label string, ants []ID) ID {
	if r == nil {
		return 0
	}
	return r.append(Entry{
		Kind: KindRule, T: t, Node: r.intern(node), Lbl: r.intern(label),
	}, ants)
}

// Message records one delivery of pred from src to dst across a link of
// the given epoch, with the scheduler's logical send order. cause is
// the sender-side firing (or tuple version) that emitted the message.
func (r *Recorder) Message(t float64, src, dst, pred string, epoch int, seq int64, cause ID) ID {
	if r == nil {
		return 0
	}
	return r.append(Entry{
		Kind: KindMessage, T: t,
		Node: r.intern(dst), From: r.intern(src), Lbl: r.intern(pred),
		N: int64(epoch), Seq: seq,
	}, []ID{cause})
}

// Fault records a fault-injection leaf: kind is "link_down", "link_up",
// "crash", "restart", or "partition"; a and b are the affected node(s),
// n carries the kind-specific payload (link cost, partition id).
func (r *Recorder) Fault(t float64, kind, a, b string, n int64) ID {
	if r == nil {
		return 0
	}
	id := r.append(Entry{
		Kind: KindFault, T: t,
		Node: r.intern(a), From: r.intern(b), Lbl: r.intern(kind), N: n,
	}, nil)
	r.faults = append(r.faults, id)
	return id
}

// Retract records the removal of the current version of tup at node.
// reason is "expired", "link_down", "agg_empty", etc.; cause, when
// nonzero, is the entry that forced the removal (a fault). It returns 0
// when no version of the tuple was on record.
func (r *Recorder) Retract(t float64, node, pred string, tup value.Tuple, reason string, cause ID) ID {
	if r == nil {
		return 0
	}
	k := string(r.curKey(node, pred, tup))
	victim, ok := r.cur[k]
	if !ok {
		return 0
	}
	delete(r.cur, k)
	id := r.append(Entry{
		Kind: KindRetract, T: t,
		Node: r.intern(node), Lbl: r.intern(reason), Tup: r.Get(victim).Tup,
	}, []ID{victim, cause})
	r.retracted[victim] = id
	return id
}

// Drop forgets the current version of tup at node without recording a
// retraction — key replacement, where the superseding version's own
// Tuple call tells the story.
func (r *Recorder) Drop(node, pred string, tup value.Tuple) {
	if r == nil {
		return
	}
	delete(r.cur, string(r.curKey(node, pred, tup)))
}

// DropNode forgets every current tuple version at node (crash: the
// node's tables are wiped wholesale).
func (r *Recorder) DropNode(node string) {
	if r == nil {
		return
	}
	prefix := node + "\x00"
	for k := range r.cur {
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			delete(r.cur, k)
		}
	}
}

// Current returns the live version of tup at node, or 0. The lookup
// does not allocate (reusable key buffer, map probe on string(b)).
func (r *Recorder) Current(node, pred string, tup value.Tuple) ID {
	if r == nil {
		return 0
	}
	return r.cur[string(r.curKey(node, pred, tup))]
}

// Lineage returns id plus every entry transitively reachable through
// antecedent edges, deduplicated, in BFS order from id. max bounds the
// result (<=0: no bound).
func (r *Recorder) Lineage(id ID, max int) []ID {
	if r == nil || id == 0 {
		return nil
	}
	seen := map[ID]bool{id: true}
	out := []ID{id}
	for i := 0; i < len(out); i++ {
		if max > 0 && len(out) >= max {
			break
		}
		for _, a := range r.Ants(out[i]) {
			if !seen[a] {
				seen[a] = true
				out = append(out, a)
			}
		}
	}
	return out
}

// FaultsOn returns the fault entries implicated in a lineage: faults
// that retracted a lineage member's support (via KindRetract causes)
// and faults whose endpoints match a link crossed by a lineage message
// or a node a lineage entry lives on (crash/restart only — a link
// fault on an unrelated node pair is not implicated by co-location).
// The result is deduplicated, in recorder order.
func (r *Recorder) FaultsOn(lineage []ID) []ID {
	if r == nil {
		return nil
	}
	want := map[ID]bool{}
	nodes := map[int32]bool{}
	links := map[[2]int32]bool{}
	for _, id := range lineage {
		e := r.Get(id)
		if e.Node != 0 {
			nodes[e.Node] = true
		}
		if e.Kind == KindMessage && e.From != 0 {
			a, b := e.From, e.Node
			if a > b {
				a, b = b, a
			}
			links[[2]int32{a, b}] = true
		}
		if rid, ok := r.retracted[id]; ok {
			for _, a := range r.Ants(rid) {
				if r.Get(a).Kind == KindFault {
					want[a] = true
				}
			}
		}
	}
	var out []ID
	for _, fid := range r.faults {
		f := r.Get(fid)
		kind := r.Str(f.Lbl)
		implicated := want[fid]
		if !implicated {
			switch kind {
			case "crash", "restart":
				implicated = nodes[f.Node]
			case "link_down", "link_up":
				a, b := f.Node, f.From
				if a > b {
					a, b = b, a
				}
				implicated = links[[2]int32{a, b}]
			}
		}
		if implicated {
			out = append(out, fid)
		}
	}
	return out
}

// RecordMetrics publishes the recorder's totals into an obs collector
// under component "prov", so EXPLAIN/metrics renderers show provenance
// volume next to the evaluation counters it annotates.
func (r *Recorder) RecordMetrics(col *obs.Collector) {
	if r == nil || col == nil {
		return
	}
	counts := map[Kind]int64{}
	for _, e := range r.entries[1:] {
		counts[e.Kind]++
	}
	for _, k := range []Kind{KindTuple, KindRule, KindMessage, KindFault, KindRetract} {
		col.Counter("prov", "entries", k.String()).Add(counts[k])
	}
	col.Counter("prov", "interned_strings", "").Add(int64(len(r.strs) - 1))
	col.Counter("prov", "antecedent_edges", "").Add(int64(len(r.ants)))
}
