package prov

import (
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/value"
)

func tup(vs ...value.V) value.Tuple { return value.Tuple(vs) }

func TestNilRecorderIsDisabledAndFree(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	link := tup(value.Addr("a"), value.Addr("b"), value.Int(1))
	allocs := testing.AllocsPerRun(100, func() {
		if id := r.Tuple(0, "a", "link", link, 0); id != 0 {
			t.Fatal("nil Tuple returned nonzero id")
		}
		r.Rule(0, "a", "r1", nil)
		r.Message(0, "a", "b", "path", 1, 2, 0)
		r.Fault(0, "link_down", "a", "b", 0)
		r.Retract(0, "a", "link", link, "expired", 0)
		r.Drop("a", "link", link)
		r.DropNode("a")
		r.Current("a", "link", link)
		r.Lineage(1, 0)
		r.FaultsOn(nil)
		r.RecordMetrics(nil)
	})
	if allocs != 0 {
		t.Fatalf("nil recorder allocated %.1f per run", allocs)
	}
}

func TestDerivationLineage(t *testing.T) {
	r := New()
	link := tup(value.Addr("a"), value.Addr("b"), value.Int(1))
	lid := r.Tuple(0, "a", "link", link, 0)
	if got := r.Current("a", "link", link); got != lid {
		t.Fatalf("Current = %d, want %d", got, lid)
	}
	fire := r.Rule(0.5, "a", "r1", []ID{lid})
	path := tup(value.Addr("a"), value.Addr("b"), value.Int(1))
	pid := r.Tuple(0.5, "a", "path", path, fire)

	// Deliver the path to b over a message edge.
	msg := r.Message(1, "a", "b", "path", 0, 7, pid)
	rpid := r.Tuple(1, "b", "path", path, msg)

	lin := r.Lineage(rpid, 0)
	want := []ID{rpid, msg, pid, fire, lid}
	if len(lin) != len(want) {
		t.Fatalf("lineage %v, want %v", lin, want)
	}
	for i := range want {
		if lin[i] != want[i] {
			t.Fatalf("lineage %v, want %v", lin, want)
		}
	}

	e := r.Get(msg)
	if e.Kind != KindMessage || r.Str(e.From) != "a" || r.Str(e.Node) != "b" || e.Seq != 7 {
		t.Fatalf("message entry mismatch: %+v", e)
	}
	if e := r.Get(lid); len(r.Ants(lid)) != 0 || e.Kind != KindTuple {
		t.Fatalf("base leaf should have no antecedents: %+v", e)
	}
}

func TestCurrentTracksReplaceRetractAndCrash(t *testing.T) {
	r := New()
	link := tup(value.Addr("a"), value.Addr("b"), value.Int(1))
	old := r.Tuple(0, "a", "link", link, 0)

	// Key replacement: Drop forgets the superseded content version.
	r.Drop("a", "link", link)
	if got := r.Current("a", "link", link); got != 0 {
		t.Fatalf("Current after Drop = %d, want 0", got)
	}
	cur := r.Tuple(1, "a", "link", link, 0)
	if got := r.Current("a", "link", link); got != cur {
		t.Fatalf("Current = %d, want %d", got, cur)
	}

	// Fault-driven retraction links victim -> fault.
	f := r.Fault(2, "link_down", "a", "b", 0)
	rid := r.Retract(2, "a", "link", link, "link_down", f)
	if rid == 0 {
		t.Fatal("Retract of live tuple returned 0")
	}
	if got := r.Current("a", "link", link); got != 0 {
		t.Fatalf("Current after Retract = %d, want 0", got)
	}
	if got, ok := r.RetractionOf(cur); !ok || got != rid {
		t.Fatalf("RetractionOf = %d,%v want %d,true", got, ok, rid)
	}
	if _, ok := r.RetractionOf(old); ok {
		t.Fatal("dropped version should not be marked retracted")
	}
	// Retracting an unknown tuple is a no-op.
	if id := r.Retract(3, "a", "link", link, "expired", 0); id != 0 {
		t.Fatalf("Retract of absent tuple = %d, want 0", id)
	}

	// Crash wipes a node's current map, and only that node's.
	r.Tuple(4, "a", "link", link, 0)
	bl := r.Tuple(4, "b", "link", link, 0)
	r.DropNode("a")
	if got := r.Current("a", "link", link); got != 0 {
		t.Fatal("DropNode left node-a tuple current")
	}
	if got := r.Current("b", "link", link); got != bl {
		t.Fatal("DropNode clobbered node-b tuple")
	}
}

func TestFaultsOn(t *testing.T) {
	r := New()
	link := tup(value.Addr("a"), value.Addr("b"), value.Int(1))
	lid := r.Tuple(0, "a", "link", link, 0)
	fire := r.Rule(0, "a", "r1", []ID{lid})
	path := tup(value.Addr("a"), value.Addr("b"), value.Int(1))
	pid := r.Tuple(0, "a", "path", path, fire)
	msg := r.Message(1, "a", "b", "path", 0, 1, pid)
	rpid := r.Tuple(1, "b", "path", path, msg)

	// A fault that retracted lineage support is implicated.
	fDown := r.Fault(2, "link_down", "a", "b", 0)
	r.Retract(2, "a", "link", link, "link_down", fDown)
	// A crash on a lineage node is implicated; one elsewhere is not.
	fCrash := r.Fault(3, "crash", "b", "", 0)
	fOther := r.Fault(3, "crash", "zzz", "", 0)
	// A link fault on an uncrossed link is not implicated.
	fFar := r.Fault(4, "link_down", "x", "y", 0)

	got := r.FaultsOn(r.Lineage(rpid, 0))
	if len(got) != 2 || got[0] != fDown || got[1] != fCrash {
		t.Fatalf("FaultsOn = %v, want [%d %d] (not %d/%d)", got, fDown, fCrash, fOther, fFar)
	}
}

func TestTreeRendering(t *testing.T) {
	r := New()
	link := tup(value.Addr("a"), value.Addr("b"), value.Int(1))
	lid := r.Tuple(0, "a", "link", link, 0)
	fire := r.Rule(0.25, "a", "r1", []ID{lid, lid}) // shared antecedent
	path := tup(value.Addr("a"), value.Addr("b"), value.Int(1))
	pid := r.Tuple(0.25, "a", "path", path, fire)

	n := r.Tree(pid)
	if n == nil || len(n.Children) != 1 || len(n.Children[0].Children) != 2 {
		t.Fatalf("unexpected tree shape: %+v", n)
	}
	if !n.Children[0].Children[1].Ref {
		t.Fatal("second occurrence of shared antecedent should be a ref")
	}

	var b strings.Builder
	r.WriteTree(&b, pid)
	out := b.String()
	for _, want := range []string{"path(a,b,1) @a", "rule r1 @a", "link(a,b,1) @a", "[base]", "[see above]"} {
		if !strings.Contains(out, want) {
			t.Fatalf("tree text missing %q:\n%s", want, out)
		}
	}

	js, err := r.TreeJSON(pid)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"kind": "rule"`, `"label": "r1"`, `"tuple": "(a,b,1)"`} {
		if !strings.Contains(string(js), want) {
			t.Fatalf("tree JSON missing %q:\n%s", want, js)
		}
	}

	if r.Tree(0) != nil {
		t.Fatal("Tree(0) should be nil")
	}
	var nilRec *Recorder
	b.Reset()
	nilRec.WriteTree(&b, 1)
	if !strings.Contains(b.String(), "no provenance") {
		t.Fatalf("nil WriteTree output: %q", b.String())
	}
}

func TestRecordMetrics(t *testing.T) {
	r := New()
	link := tup(value.Addr("a"), value.Addr("b"), value.Int(1))
	lid := r.Tuple(0, "a", "link", link, 0)
	r.Rule(0, "a", "r1", []ID{lid})
	col := obs.NewCollector()
	r.RecordMetrics(col)
	if got := col.Value("prov", "entries", "tuple"); got != 1 {
		t.Fatalf("tuple entries metric = %d, want 1", got)
	}
	if got := col.Value("prov", "entries", "rule"); got != 1 {
		t.Fatalf("rule entries metric = %d, want 1", got)
	}
	if got := col.Value("prov", "antecedent_edges", ""); got != 1 {
		t.Fatalf("antecedent edges metric = %d, want 1", got)
	}
}

func TestParseTupleSpec(t *testing.T) {
	pred, tu, err := ParseTupleSpec(`bestPathCost(n0,n2,2)`)
	if err != nil || pred != "bestPathCost" {
		t.Fatalf("ParseTupleSpec: %v pred=%q", err, pred)
	}
	want := tup(value.Addr("n0"), value.Addr("n2"), value.Int(2))
	if !tu.Equal(want) {
		t.Fatalf("tuple = %v, want %v", tu, want)
	}

	pred, tu, err = ParseTupleSpec(` bestPath( n0 , n2 , 2 , [n0,n1,n2] ). `)
	if err != nil || pred != "bestPath" {
		t.Fatalf("ParseTupleSpec list: %v pred=%q", err, pred)
	}
	if tu[3].K != value.KindList || len(tu[3].L) != 3 || !tu[3].L[1].Equal(value.Addr("n1")) {
		t.Fatalf("list arg = %v", tu[3])
	}

	_, tu, err = ParseTupleSpec(`p("hi, there",true,-3)`)
	if err != nil {
		t.Fatal(err)
	}
	if !tu.Equal(tup(value.Str("hi, there"), value.Bool(true), value.Int(-3))) {
		t.Fatalf("mixed args = %v", tu)
	}

	if _, tu, err = ParseTupleSpec(`empty()`); err != nil || len(tu) != 0 {
		t.Fatalf("empty args: %v %v", err, tu)
	}

	for _, bad := range []string{"nope", "p(", "p(a", "p(a))", `p("x)`, "(a,b)", "p([a)"} {
		if _, _, err := ParseTupleSpec(bad); err == nil {
			t.Fatalf("ParseTupleSpec(%q) should fail", bad)
		}
	}
}
