package prov

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// TreeNode is the resolved, render-ready form of one provenance entry.
// Repeated entries (a tuple feeding two antecedent positions) appear
// once in full; later occurrences are marked Ref with no children, so
// trees stay finite and compact on shared sub-derivations.
type TreeNode struct {
	ID       ID          `json:"id"`
	Kind     string      `json:"kind"`
	Node     string      `json:"node,omitempty"`
	From     string      `json:"from,omitempty"`
	Label    string      `json:"label,omitempty"`
	Tuple    string      `json:"tuple,omitempty"`
	T        float64     `json:"t"`
	Epoch    int64       `json:"epoch,omitempty"`
	Seq      int64       `json:"seq,omitempty"`
	Ref      bool        `json:"ref,omitempty"`
	Children []*TreeNode `json:"children,omitempty"`
}

// Tree resolves the derivation tree rooted at id.
func (r *Recorder) Tree(id ID) *TreeNode {
	if r == nil || id == 0 {
		return nil
	}
	return r.tree(id, map[ID]bool{})
}

func (r *Recorder) tree(id ID, seen map[ID]bool) *TreeNode {
	e := r.Get(id)
	n := &TreeNode{
		ID: id, Kind: e.Kind.String(),
		Node: r.Str(e.Node), From: r.Str(e.From),
		Label: r.Str(e.Lbl), Tuple: r.Str(e.Tup),
		T: e.T,
	}
	if e.Kind == KindMessage {
		n.Epoch, n.Seq = e.N, e.Seq
	}
	if seen[id] {
		n.Ref = true
		return n
	}
	seen[id] = true
	for _, a := range r.Ants(id) {
		n.Children = append(n.Children, r.tree(a, seen))
	}
	return n
}

// line renders one node in the EXPLAIN house style.
func (n *TreeNode) line() string {
	var s string
	switch n.Kind {
	case "tuple":
		s = fmt.Sprintf("%s%s @%s", n.Label, n.Tuple, n.Node)
		if len(n.Children) == 0 && !n.Ref {
			s += "  [base]"
		}
	case "rule":
		s = fmt.Sprintf("rule %s @%s", n.Label, n.Node)
	case "message":
		s = fmt.Sprintf("recv %s  %s -> %s  (epoch %d, send #%d)", n.Label, n.From, n.Node, n.Epoch, n.Seq)
	case "fault":
		s = fmt.Sprintf("fault %s %s", n.Label, faultWhere(n.Label, n.Node, n.From))
	case "retract":
		s = fmt.Sprintf("retract %s @%s (%s)", n.Tuple, n.Node, n.Label)
	default:
		s = fmt.Sprintf("entry #%d", n.ID)
	}
	s += fmt.Sprintf("  t=%s", fmtT(n.T))
	if n.Ref {
		s += "  [see above]"
	}
	return s
}

func faultWhere(kind, a, b string) string {
	switch kind {
	case "link_down", "link_up":
		return a + "--" + b
	default:
		return a
	}
}

func fmtT(t float64) string {
	s := fmt.Sprintf("%.3f", t)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		s = "0"
	}
	return s + "s"
}

// WriteTree renders the derivation tree rooted at id as indented text,
// matching the obs EXPLAIN renderer's layout conventions.
func (r *Recorder) WriteTree(w io.Writer, id ID) {
	n := r.Tree(id)
	if n == nil {
		fmt.Fprintln(w, "  (no provenance recorded)")
		return
	}
	writeTree(w, n, "  ")
}

func writeTree(w io.Writer, n *TreeNode, indent string) {
	fmt.Fprintf(w, "%s%s\n", indent, n.line())
	for _, c := range n.Children {
		writeTree(w, c, indent+"  ")
	}
}

// TreeJSON renders the derivation tree rooted at id as indented JSON.
func (r *Recorder) TreeJSON(id ID) ([]byte, error) {
	n := r.Tree(id)
	if n == nil {
		return []byte("null"), nil
	}
	return json.MarshalIndent(n, "", "  ")
}

// Describe renders one entry as a single line (used by root-cause
// chains and lineage listings).
func (r *Recorder) Describe(id ID) string {
	if r == nil || id == 0 {
		return "(none)"
	}
	n := &TreeNode{}
	e := r.Get(id)
	n.ID, n.Kind = id, e.Kind.String()
	n.Node, n.From = r.Str(e.Node), r.Str(e.From)
	n.Label, n.Tuple = r.Str(e.Lbl), r.Str(e.Tup)
	n.T = e.T
	if e.Kind == KindMessage {
		n.Epoch, n.Seq = e.N, e.Seq
	}
	return n.line()
}
