package prov

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/value"
)

// ParseTupleSpec parses a tuple written in NDlog fact syntax, e.g.
// `bestPathCost(n0,n2,2)`, into its predicate and value tuple. Bare
// identifiers become addresses, digit runs integers, quoted strings
// strings, true/false booleans, and [..] lists.
func ParseTupleSpec(spec string) (string, value.Tuple, error) {
	spec = strings.TrimSpace(spec)
	spec = strings.TrimSuffix(spec, ".")
	open := strings.IndexByte(spec, '(')
	if open <= 0 || !strings.HasSuffix(spec, ")") {
		return "", nil, fmt.Errorf("prov: tuple spec must look like pred(arg,...): %q", spec)
	}
	pred := strings.TrimSpace(spec[:open])
	body := spec[open+1 : len(spec)-1]
	args, err := splitArgs(body)
	if err != nil {
		return "", nil, fmt.Errorf("prov: %v in %q", err, spec)
	}
	tup := make(value.Tuple, 0, len(args))
	for _, a := range args {
		v, err := parseVal(a)
		if err != nil {
			return "", nil, fmt.Errorf("prov: %v in %q", err, spec)
		}
		tup = append(tup, v)
	}
	return pred, tup, nil
}

// splitArgs splits a comma-separated argument list, respecting nested
// brackets and quoted strings. An empty body yields no arguments.
func splitArgs(body string) ([]string, error) {
	if strings.TrimSpace(body) == "" {
		return nil, nil
	}
	var args []string
	depth, start := 0, 0
	inStr := false
	for i := 0; i < len(body); i++ {
		c := body[i]
		if inStr {
			switch c {
			case '\\':
				i++
			case '"':
				inStr = false
			}
			continue
		}
		switch c {
		case '"':
			inStr = true
		case '[', '(':
			depth++
		case ']', ')':
			depth--
			if depth < 0 {
				return nil, fmt.Errorf("unbalanced brackets")
			}
		case ',':
			if depth == 0 {
				args = append(args, body[start:i])
				start = i + 1
			}
		}
	}
	if depth != 0 || inStr {
		return nil, fmt.Errorf("unbalanced brackets")
	}
	args = append(args, body[start:])
	return args, nil
}

func parseVal(s string) (value.V, error) {
	s = strings.TrimSpace(s)
	switch {
	case s == "":
		return value.V{}, fmt.Errorf("empty argument")
	case s == "true":
		return value.Bool(true), nil
	case s == "false":
		return value.Bool(false), nil
	case s[0] == '"':
		u, err := strconv.Unquote(s)
		if err != nil {
			return value.V{}, fmt.Errorf("bad string %s", s)
		}
		return value.Str(u), nil
	case s[0] == '[':
		if !strings.HasSuffix(s, "]") {
			return value.V{}, fmt.Errorf("bad list %s", s)
		}
		elems, err := splitArgs(s[1 : len(s)-1])
		if err != nil {
			return value.V{}, err
		}
		l := make([]value.V, 0, len(elems))
		for _, e := range elems {
			v, err := parseVal(e)
			if err != nil {
				return value.V{}, err
			}
			l = append(l, v)
		}
		return value.List(l...), nil
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return value.Int(i), nil
	}
	return value.Addr(s), nil
}
