package prover

import (
	"math/big"
	"sort"

	"repro/internal/logic"
	"repro/internal/value"
)

// Assert runs the decision procedure on the current goal (PVS `assert`):
// ground-term evaluation, propositional simplification, congruence closure
// over equalities, and Fourier–Motzkin linear arithmetic over the
// integers. It closes the goal when the antecedent together with the
// negated consequent is inconsistent, and otherwise leaves the simplified
// goal open.
func (p *Prover) Assert() error {
	if len(p.goals) == 0 {
		return ErrNoOpenGoal
	}
	defer p.step("(assert)")()
	wasAuto := p.inAuto
	p.inAuto = true
	defer func() { p.inAuto = wasAuto }()

	g := p.pop()
	ng, closed := p.assertGoal(g)
	if !closed {
		p.push(*ng)
	}
	return nil
}

// assertGoal simplifies and attempts to close g. Exposed internally for
// grind.
func (p *Prover) assertGoal(g Sequent) (out *Sequent, closed bool) {
	return p.assertGoalDepth(g, 8)
}

// assertGoalDepth is assertGoal with a bound on unit-propagation restarts.
func (p *Prover) assertGoalDepth(g Sequent, depth int) (out *Sequent, closed bool) {
	// Phase 1: evaluate ground subterms and atoms.
	ng := g.Clone()
	for i, f := range ng.Ante {
		ng.Ante[i] = p.simplifyFormula(f)
	}
	for i, f := range ng.Cons {
		ng.Cons[i] = p.simplifyFormula(f)
	}

	// Phase 1.5: rewrite with antecedent equalities whose one side is an
	// atomic term — a variable or skolem constant (PVS's replace*). This
	// lets the symbolic rewrite rules fire through definitions, e.g.
	// P!1 = f_init(S!1,D!1) turns f_last(P!1) into f_last(f_init(...)) → D!1.
	ng = p.substituteEqualities(ng)
	for i, f := range ng.Ante {
		ng.Ante[i] = p.simplifyFormula(f)
	}
	for i, f := range ng.Cons {
		ng.Cons[i] = p.simplifyFormula(f)
	}

	// Phase 2: propositional flattening.
	flat, cl := p.flattenFully(ng)
	if cl {
		return nil, true
	}
	ng = *flat

	// Phase 3: congruence closure (engine chosen by kernel mode: interned
	// ids or the seed string keys).
	cc := p.newCC()
	for _, f := range ng.Ante {
		if eq, ok := f.(logic.Eq); ok {
			cc.addTerm(eq.L)
			cc.addTerm(eq.R)
			cc.merge(eq.L, eq.R)
		}
		if pr, ok := f.(logic.Pred); ok {
			for _, t := range pr.Args {
				cc.addTerm(t)
			}
		}
	}
	for _, f := range ng.Cons {
		switch x := f.(type) {
		case logic.Eq:
			cc.addTerm(x.L)
			cc.addTerm(x.R)
		case logic.Pred:
			for _, t := range x.Args {
				cc.addTerm(t)
			}
		}
	}
	cc.close()

	// Contradictory antecedent equality between distinct constants.
	if cc.bad() {
		p.prim()
		return nil, true
	}
	// A consequent equality already entailed by the antecedent equalities.
	for _, f := range ng.Cons {
		if eq, ok := f.(logic.Eq); ok && cc.same(eq.L, eq.R) {
			p.prim()
			return nil, true
		}
	}
	// A consequent atom congruent to an antecedent atom.
	for _, cf := range ng.Cons {
		cp, ok := cf.(logic.Pred)
		if !ok {
			continue
		}
		for _, af := range ng.Ante {
			ap, ok := af.(logic.Pred)
			if !ok || ap.Name != cp.Name || len(ap.Args) != len(cp.Args) {
				continue
			}
			all := true
			for i := range ap.Args {
				if !cc.same(ap.Args[i], cp.Args[i]) {
					all = false
					break
				}
			}
			if all {
				p.prim()
				return nil, true
			}
		}
	}

	// Phase 4: linear integer arithmetic via Fourier–Motzkin. The goal is
	// valid if antecedent ∧ ¬consequent is unsatisfiable over the
	// arithmetic atoms.
	lpAnte := newLinearSystem() // antecedent constraints only
	okArith := true
	for _, f := range ng.Ante {
		switch x := f.(type) {
		case logic.Cmp:
			if !lpAnte.addCmp(x, false) {
				okArith = false
			}
		case logic.Eq:
			lpAnte.addEq(x)
		}
	}
	lp := newLinearSystem()
	lp.cons = append(lp.cons, lpAnte.cons...)
	for _, f := range ng.Cons {
		if x, ok := f.(logic.Cmp); ok {
			if !lp.addCmp(x, true) {
				okArith = false
			}
		}
	}
	_ = okArith // partial encodings are still sound: fewer constraints
	if lp.infeasible() {
		p.prim()
		return nil, true
	}

	// Phase 5: unit propagation (hypothesis chaining, as PVS's assert does
	// via its rewriter): an antecedent implication whose hypothesis is
	// entailed by the rest of the antecedent is replaced by its conclusion,
	// and the analysis restarts.
	if depth > 0 {
		var entailed func(f logic.Formula) bool
		entailed = func(f logic.Formula) bool {
			switch x := f.(type) {
			case logic.Pred:
				for _, af := range ng.Ante {
					ap, ok := af.(logic.Pred)
					if !ok || ap.Name != x.Name || len(ap.Args) != len(x.Args) {
						continue
					}
					all := true
					for i := range ap.Args {
						if !cc.same(ap.Args[i], x.Args[i]) {
							all = false
							break
						}
					}
					if all {
						return true
					}
				}
				return false
			case logic.Eq:
				cc.addTerm(x.L)
				cc.addTerm(x.R)
				return cc.same(x.L, x.R)
			case logic.Cmp:
				// Entailed iff antecedent constraints plus the negation are
				// infeasible.
				trial := newLinearSystem()
				trial.cons = append(trial.cons, lpAnte.cons...)
				if !trial.addCmp(x, true) {
					return false
				}
				return trial.infeasible()
			case logic.And:
				for _, g := range x.Fs {
					if !entailed(g) {
						return false
					}
				}
				return true
			default:
				return containsFormula(ng.Ante, f)
			}
		}
		for i, f := range ng.Ante {
			imp, ok := f.(logic.Implies)
			if !ok {
				continue
			}
			if entailed(imp.L) {
				next := ng.Clone()
				next.Ante[i] = imp.R
				p.prim()
				return p.assertGoalDepth(next, depth-1)
			}
		}
	}

	p.prim()
	return &ng, false
}

// simplifyFormula evaluates ground subterms and decides ground atoms. The
// interned kernel memoizes results by formula id — simplification is a pure
// function of the formula, and interned ids identify formulas up to the
// Conj/Disj normalization that simplification itself applies, so replaying
// a cached result is exact.
func (p *Prover) simplifyFormula(f logic.Formula) logic.Formula {
	if p.structural {
		return p.simplifyFormulaRaw(f)
	}
	f = logic.InternFormula(f)
	id := logic.FormulaID(f)
	if r, ok := p.simp[id]; ok {
		return r
	}
	r := logic.InternFormula(p.simplifyFormulaRaw(f))
	if p.simp == nil {
		p.simp = map[uint64]logic.Formula{}
	}
	p.simp[id] = r
	return r
}

func (p *Prover) simplifyFormulaRaw(f logic.Formula) logic.Formula {
	switch x := f.(type) {
	case logic.Pred:
		args := make([]logic.Term, len(x.Args))
		for i, t := range x.Args {
			args[i] = simplifyTerm(t)
		}
		return logic.Pred{Name: x.Name, Args: args}
	case logic.Eq:
		l, r := simplifyTerm(x.L), simplifyTerm(x.R)
		if lc, ok := l.(logic.Const); ok {
			if rc, ok := r.(logic.Const); ok {
				return logic.TruthVal{B: lc.Val.Equal(rc.Val)}
			}
		}
		if logic.TermEqual(l, r) {
			return logic.True
		}
		return logic.Eq{L: l, R: r}
	case logic.Cmp:
		l, r := simplifyTerm(x.L), simplifyTerm(x.R)
		if lc, ok := l.(logic.Const); ok {
			if rc, ok := r.(logic.Const); ok {
				v, err := value.ApplyBinary(x.Op, lc.Val, rc.Val)
				if err == nil && v.IsBool() {
					return logic.TruthVal{B: v.True()}
				}
			}
		}
		return logic.Cmp{Op: x.Op, L: l, R: r}
	case logic.Not:
		return logic.Not{F: p.simplifyFormula(x.F)}
	case logic.And:
		fs := make([]logic.Formula, len(x.Fs))
		for i, g := range x.Fs {
			fs[i] = p.simplifyFormula(g)
		}
		return logic.Conj(fs...)
	case logic.Or:
		fs := make([]logic.Formula, len(x.Fs))
		for i, g := range x.Fs {
			fs[i] = p.simplifyFormula(g)
		}
		return logic.Disj(fs...)
	case logic.Implies:
		return logic.Implies{L: p.simplifyFormula(x.L), R: p.simplifyFormula(x.R)}
	case logic.Iff:
		return logic.Iff{L: p.simplifyFormula(x.L), R: p.simplifyFormula(x.R)}
	case logic.Forall:
		return logic.Forall{Vars: x.Vars, Body: p.simplifyFormula(x.Body)}
	case logic.Exists:
		return logic.Exists{Vars: x.Vars, Body: p.simplifyFormula(x.Body)}
	default:
		return f
	}
}

// simplifyTerm evaluates every ground, interpreted subterm and applies the
// symbolic rewrite rules of the path-vector builtins (the equational
// theory PVS would carry as rewrite lemmas):
//
//	f_last(f_init(x,y))        → y
//	f_last(f_concatPath(x,p))  → f_last(p)
//	f_first(f_init(x,y))       → x
//	f_first(f_concatPath(x,p)) → x
//	f_size(f_init(x,y))        → 2
//	f_size(f_concatPath(x,p))  → f_size(p) + 1
func simplifyTerm(t logic.Term) logic.Term {
	a, ok := t.(logic.App)
	if !ok {
		return t
	}
	args := make([]logic.Term, len(a.Args))
	ground := true
	for i, arg := range a.Args {
		args[i] = simplifyTerm(arg)
		if _, isC := args[i].(logic.Const); !isC {
			ground = false
		}
	}
	nt := logic.App{Fn: a.Fn, Args: args}
	if ground && len(args) > 0 {
		if v, err := logic.EvalGround(nt); err == nil {
			return logic.Const{Val: v}
		}
	}
	if rw, ok := rewriteListFn(nt); ok {
		return simplifyTerm(rw)
	}
	return nt
}

// rewriteListFn applies one step of the builtin list equations to a
// symbolic application.
func rewriteListFn(a logic.App) (logic.Term, bool) {
	if len(a.Args) != 1 {
		return nil, false
	}
	inner, ok := a.Args[0].(logic.App)
	if !ok {
		return nil, false
	}
	switch a.Fn {
	case "f_last":
		switch inner.Fn {
		case "f_init":
			if len(inner.Args) == 2 {
				return inner.Args[1], true
			}
		case "f_concatPath":
			if len(inner.Args) == 2 {
				return logic.Fn("f_last", inner.Args[1]), true
			}
		}
	case "f_first":
		switch inner.Fn {
		case "f_init", "f_concatPath":
			if len(inner.Args) == 2 {
				return inner.Args[0], true
			}
		}
	case "f_size":
		switch inner.Fn {
		case "f_init":
			if len(inner.Args) == 2 {
				return logic.IntT(2), true
			}
		case "f_concatPath":
			if len(inner.Args) == 2 {
				return logic.Fn("+", logic.Fn("f_size", inner.Args[1]), logic.IntT(1)), true
			}
		}
	}
	return nil, false
}

// substituteEqualities applies antecedent equations of the form
// atom = term (or term = atom), where atom is a variable or skolem
// constant not occurring in term, to every other formula of the sequent.
func (p *Prover) substituteEqualities(g Sequent) Sequent {
	ng := g.Clone()
	for iter := 0; iter < 8; iter++ {
		changed := false
		for i, f := range ng.Ante {
			eq, ok := f.(logic.Eq)
			if !ok {
				continue
			}
			from, to, ok := orientEquation(eq)
			if !ok {
				continue
			}
			did := false
			rw := func(h logic.Formula) logic.Formula {
				out := replaceTermInFormula(h, from, to, &did)
				return out
			}
			for j := range ng.Ante {
				if j == i {
					continue
				}
				ng.Ante[j] = rw(ng.Ante[j])
			}
			for j := range ng.Cons {
				ng.Cons[j] = rw(ng.Cons[j])
			}
			if did {
				p.prim()
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return ng
}

// orientEquation picks the rewrite direction: the atomic side (variable or
// nullary application) is replaced by the other side, provided it does not
// occur there.
func orientEquation(eq logic.Eq) (from, to logic.Term, ok bool) {
	if isAtomicTerm(eq.L) && !termContains(eq.R, eq.L) && !logic.TermEqual(eq.L, eq.R) {
		return eq.L, eq.R, true
	}
	if isAtomicTerm(eq.R) && !termContains(eq.L, eq.R) && !logic.TermEqual(eq.L, eq.R) {
		return eq.R, eq.L, true
	}
	return nil, nil, false
}

func isAtomicTerm(t logic.Term) bool {
	switch x := t.(type) {
	case logic.Var:
		return true
	case logic.App:
		return len(x.Args) == 0
	}
	return false
}

func termContains(t, needle logic.Term) bool {
	if logic.TermEqual(t, needle) {
		return true
	}
	if a, ok := t.(logic.App); ok {
		for _, arg := range a.Args {
			if termContains(arg, needle) {
				return true
			}
		}
	}
	return false
}

func replaceTerm(t, from, to logic.Term, did *bool) logic.Term {
	if logic.TermEqual(t, from) {
		*did = true
		return to
	}
	if a, ok := t.(logic.App); ok {
		args := make([]logic.Term, len(a.Args))
		for i, arg := range a.Args {
			args[i] = replaceTerm(arg, from, to, did)
		}
		return logic.App{Fn: a.Fn, Args: args}
	}
	return t
}

// replaceTermInFormula rewrites from→to in the quantifier-free part of f;
// it does not descend under binders that capture a variable named in the
// terms (conservative: it skips quantifiers entirely, which is sound —
// fewer rewrites only weaken simplification).
func replaceTermInFormula(f logic.Formula, from, to logic.Term, did *bool) logic.Formula {
	switch x := f.(type) {
	case logic.Pred:
		args := make([]logic.Term, len(x.Args))
		for i, a := range x.Args {
			args[i] = replaceTerm(a, from, to, did)
		}
		return logic.Pred{Name: x.Name, Args: args}
	case logic.Eq:
		return logic.Eq{L: replaceTerm(x.L, from, to, did), R: replaceTerm(x.R, from, to, did)}
	case logic.Cmp:
		return logic.Cmp{Op: x.Op, L: replaceTerm(x.L, from, to, did), R: replaceTerm(x.R, from, to, did)}
	case logic.Not:
		return logic.Not{F: replaceTermInFormula(x.F, from, to, did)}
	case logic.And:
		fs := make([]logic.Formula, len(x.Fs))
		for i, g := range x.Fs {
			fs[i] = replaceTermInFormula(g, from, to, did)
		}
		return logic.And{Fs: fs}
	case logic.Or:
		fs := make([]logic.Formula, len(x.Fs))
		for i, g := range x.Fs {
			fs[i] = replaceTermInFormula(g, from, to, did)
		}
		return logic.Or{Fs: fs}
	case logic.Implies:
		return logic.Implies{L: replaceTermInFormula(x.L, from, to, did), R: replaceTermInFormula(x.R, from, to, did)}
	case logic.Iff:
		return logic.Iff{L: replaceTermInFormula(x.L, from, to, did), R: replaceTermInFormula(x.R, from, to, did)}
	default:
		return f
	}
}

// --- congruence closure ----------------------------------------------------

// ccEngine abstracts the congruence-closure engine so the interned kernel
// (id-keyed, ccid.go) and the seed kernel (string-keyed, below) share the
// assert driver. Both implement the same union policy (constants preferred
// as representatives) and the same pairwise closure, so they compute
// identical equivalence classes.
type ccEngine interface {
	addTerm(t logic.Term)
	merge(l, r logic.Term)
	same(l, r logic.Term) bool
	close()
	bad() bool
}

type ccNode struct {
	term   logic.Term
	parent string
}

type congruence struct {
	nodes        map[string]*ccNode
	apps         []logic.App // application terms, for congruence propagation
	inconsistent bool
}

func newCongruence() *congruence {
	return &congruence{nodes: map[string]*ccNode{}}
}

func termKey(t logic.Term) string { return t.String() }

func (c *congruence) addTerm(t logic.Term) {
	k := termKey(t)
	if _, ok := c.nodes[k]; ok {
		return
	}
	c.nodes[k] = &ccNode{term: t, parent: k}
	if a, ok := t.(logic.App); ok {
		c.apps = append(c.apps, a)
		for _, arg := range a.Args {
			c.addTerm(arg)
		}
	}
}

func (c *congruence) find(k string) string {
	n := c.nodes[k]
	if n == nil {
		c.nodes[k] = &ccNode{parent: k}
		return k
	}
	if n.parent != k {
		n.parent = c.find(n.parent)
	}
	return n.parent
}

func (c *congruence) union(a, b string) {
	ra, rb := c.find(a), c.find(b)
	if ra == rb {
		return
	}
	// Prefer constants as representatives so contradiction detection sees
	// them.
	na, nb := c.nodes[ra], c.nodes[rb]
	ca, aIsConst := na.term.(logic.Const)
	cb, bIsConst := nb.term.(logic.Const)
	if aIsConst && bIsConst && !ca.Val.Equal(cb.Val) {
		c.inconsistent = true
	}
	if bIsConst {
		na.parent = rb
	} else {
		nb.parent = ra
	}
}

func (c *congruence) merge(l, r logic.Term) {
	c.addTerm(l)
	c.addTerm(r)
	c.union(termKey(l), termKey(r))
}

func (c *congruence) same(l, r logic.Term) bool {
	return c.find(termKey(l)) == c.find(termKey(r))
}

func (c *congruence) bad() bool { return c.inconsistent }

// close propagates congruence: f(a...) ~ f(b...) whenever a_i ~ b_i.
func (c *congruence) close() {
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(c.apps); i++ {
			for j := i + 1; j < len(c.apps); j++ {
				a, b := c.apps[i], c.apps[j]
				if a.Fn != b.Fn || len(a.Args) != len(b.Args) {
					continue
				}
				if c.same(a, b) {
					continue
				}
				cong := true
				for k := range a.Args {
					if !c.same(a.Args[k], b.Args[k]) {
						cong = false
						break
					}
				}
				if cong {
					c.union(termKey(a), termKey(b))
					changed = true
				}
			}
		}
	}
}

// --- linear arithmetic (Fourier–Motzkin over the rationals with integer
// tightening of strict inequalities) ----------------------------------------

// linExpr is Σ coeff·atom + konst; atoms are canonical keys of opaque terms.
type linExpr struct {
	coeffs map[string]*big.Rat
	konst  *big.Rat
}

func newLinExpr() *linExpr {
	return &linExpr{coeffs: map[string]*big.Rat{}, konst: new(big.Rat)}
}

func (e *linExpr) addAtom(key string, c *big.Rat) {
	cur, ok := e.coeffs[key]
	if !ok {
		cur = new(big.Rat)
		e.coeffs[key] = cur
	}
	cur.Add(cur, c)
	if cur.Sign() == 0 {
		delete(e.coeffs, key)
	}
}

func (e *linExpr) addScaled(o *linExpr, s *big.Rat) {
	for k, c := range o.coeffs {
		e.addAtom(k, new(big.Rat).Mul(c, s))
	}
	e.konst.Add(e.konst, new(big.Rat).Mul(o.konst, s))
}

// linearize converts a term into a linear expression over opaque atoms.
// Returns false if the term is non-numeric (e.g. a string constant).
func linearize(t logic.Term) (*linExpr, bool) {
	e := newLinExpr()
	switch x := t.(type) {
	case logic.Const:
		if x.Val.K != value.KindInt {
			return nil, false
		}
		e.konst.SetInt64(x.Val.I)
		return e, true
	case logic.Var:
		e.addAtom(termKey(x), big.NewRat(1, 1))
		return e, true
	case logic.App:
		switch x.Fn {
		case "+", "-":
			if len(x.Args) != 2 {
				break
			}
			l, ok := linearize(x.Args[0])
			if !ok {
				return nil, false
			}
			r, ok := linearize(x.Args[1])
			if !ok {
				return nil, false
			}
			s := big.NewRat(1, 1)
			if x.Fn == "-" {
				s.Neg(s)
			}
			l.addScaled(r, s)
			return l, true
		case "*":
			if len(x.Args) != 2 {
				break
			}
			// constant * linear or linear * constant
			if c, ok := x.Args[0].(logic.Const); ok && c.Val.K == value.KindInt {
				r, ok2 := linearize(x.Args[1])
				if !ok2 {
					return nil, false
				}
				out := newLinExpr()
				out.addScaled(r, new(big.Rat).SetInt64(c.Val.I))
				return out, true
			}
			if c, ok := x.Args[1].(logic.Const); ok && c.Val.K == value.KindInt {
				l, ok2 := linearize(x.Args[0])
				if !ok2 {
					return nil, false
				}
				out := newLinExpr()
				out.addScaled(l, new(big.Rat).SetInt64(c.Val.I))
				return out, true
			}
		}
		// Opaque atom.
		e.addAtom(termKey(x), big.NewRat(1, 1))
		return e, true
	}
	return nil, false
}

// constraint is expr ≤ 0.
type constraint struct{ e *linExpr }

type linearSystem struct {
	cons []constraint
}

func newLinearSystem() *linearSystem { return &linearSystem{} }

// addIneq records l - r ≤ -tight (tight=1 encodes strict < over ints).
func (s *linearSystem) addIneq(l, r logic.Term, strict bool) bool {
	le, ok := linearize(l)
	if !ok {
		return false
	}
	re, ok := linearize(r)
	if !ok {
		return false
	}
	e := newLinExpr()
	e.addScaled(le, big.NewRat(1, 1))
	e.addScaled(re, big.NewRat(-1, 1))
	if strict {
		e.konst.Add(e.konst, big.NewRat(1, 1)) // l < r over ints ⇔ l - r + 1 ≤ 0
	}
	s.cons = append(s.cons, constraint{e: e})
	return true
}

// addCmp records the comparison (or, if negate, its negation).
func (s *linearSystem) addCmp(c logic.Cmp, negate bool) bool {
	op := c.Op
	l, r := c.L, c.R
	if negate {
		switch op {
		case "<":
			op, l, r = "<=", r, l // ¬(l<r) ⇔ r ≤ l
		case "<=":
			op, l, r = "<", r, l // ¬(l≤r) ⇔ r < l
		case ">":
			op = "<=" // ¬(l>r) ⇔ l ≤ r
		case ">=":
			op = "<" // ¬(l≥r) ⇔ l < r
		}
	}
	switch op {
	case "<":
		return s.addIneq(l, r, true)
	case "<=":
		return s.addIneq(l, r, false)
	case ">":
		return s.addIneq(r, l, true)
	case ">=":
		return s.addIneq(r, l, false)
	}
	return false
}

// addEq records l = r as two inequalities (skipped for non-numeric terms).
func (s *linearSystem) addEq(c logic.Eq) bool {
	if !s.addIneq(c.L, c.R, false) {
		return false
	}
	return s.addIneq(c.R, c.L, false)
}

// maxFMConstraints bounds the Fourier–Motzkin blowup; exceeding it makes
// the check give up (sound: the goal simply stays open).
const maxFMConstraints = 20000

// infeasible reports whether the accumulated constraints have no rational
// solution (hence no integer solution).
func (s *linearSystem) infeasible() bool {
	cons := s.cons
	for {
		// Find a variable to eliminate.
		varSet := map[string]bool{}
		for _, c := range cons {
			for k := range c.e.coeffs {
				varSet[k] = true
			}
		}
		if len(varSet) == 0 {
			break
		}
		vars := make([]string, 0, len(varSet))
		for k := range varSet {
			vars = append(vars, k)
		}
		sort.Strings(vars)
		v := vars[0]

		var lower, upper, rest []constraint // lower: coeff<0, upper: coeff>0
		for _, c := range cons {
			coeff, ok := c.e.coeffs[v]
			switch {
			case !ok:
				rest = append(rest, c)
			case coeff.Sign() > 0:
				upper = append(upper, c)
			default:
				lower = append(lower, c)
			}
		}
		if len(lower)*len(upper)+len(rest) > maxFMConstraints {
			return false // give up
		}
		next := rest
		for _, lo := range lower {
			for _, up := range upper {
				// lo: a·v + e1 ≤ 0 with a<0;  up: b·v + e2 ≤ 0 with b>0.
				// Combine: b·e1 - a·e2 ≤ 0 (coefficients of v cancel after
				// scaling lo by b and up by -a).
				a := lo.e.coeffs[v]
				b := up.e.coeffs[v]
				e := newLinExpr()
				e.addScaled(lo.e, b)
				e.addScaled(up.e, new(big.Rat).Neg(a))
				delete(e.coeffs, v) // numeric cancellation, remove residue
				next = append(next, constraint{e: e})
			}
		}
		cons = next
	}
	// All remaining constraints are constant: konst ≤ 0 must hold.
	for _, c := range cons {
		if len(c.e.coeffs) == 0 && c.e.konst.Sign() > 0 {
			return true
		}
	}
	return false
}
