package prover

import (
	"repro/internal/logic"
)

// icc is the interned-kernel congruence-closure engine: terms are keyed by
// their hash-consing id (an O(1) map probe instead of rendering the term to
// a string), the union-find is a dense int slice, and application argument
// node indexes are precomputed so the congruence fixpoint never re-walks
// terms. It mirrors the seed engine's semantics exactly: unions prefer
// constant representatives, merging two distinct constants marks the system
// inconsistent, and close() runs the same pairwise fixpoint — so both
// engines compute identical equivalence classes.
type icc struct {
	ids    map[uint64]int // interned term id -> node index
	terms  []logic.Term
	parent []int
	apps   []iccApp
	incons bool
}

type iccApp struct {
	n    int
	fn   string
	args []int
}

func newICC() *icc {
	return &icc{ids: map[uint64]int{}}
}

// node interns t and returns its dense node index, creating it (and its
// subterm nodes) on first sight.
func (c *icc) node(t logic.Term) int {
	it := logic.InternTerm(t)
	id := logic.TermID(it)
	if n, ok := c.ids[id]; ok {
		return n
	}
	n := len(c.terms)
	c.ids[id] = n
	c.terms = append(c.terms, it)
	c.parent = append(c.parent, n)
	if a, ok := it.(logic.App); ok {
		args := make([]int, len(a.Args))
		for i, arg := range a.Args {
			args[i] = c.node(arg)
		}
		c.apps = append(c.apps, iccApp{n: n, fn: a.Fn, args: args})
	}
	return n
}

func (c *icc) addTerm(t logic.Term) { c.node(t) }

func (c *icc) find(n int) int {
	for c.parent[n] != n {
		c.parent[n] = c.parent[c.parent[n]]
		n = c.parent[n]
	}
	return n
}

func (c *icc) union(a, b int) {
	ra, rb := c.find(a), c.find(b)
	if ra == rb {
		return
	}
	// Prefer constants as representatives so contradiction detection sees
	// them (same policy as the seed engine).
	ca, aIsConst := c.terms[ra].(logic.Const)
	cb, bIsConst := c.terms[rb].(logic.Const)
	if aIsConst && bIsConst && !ca.Val.Equal(cb.Val) {
		c.incons = true
	}
	if bIsConst {
		c.parent[ra] = rb
	} else {
		c.parent[rb] = ra
	}
}

func (c *icc) merge(l, r logic.Term) {
	ln, rn := c.node(l), c.node(r)
	c.union(ln, rn)
}

func (c *icc) same(l, r logic.Term) bool {
	return c.find(c.node(l)) == c.find(c.node(r))
}

func (c *icc) bad() bool { return c.incons }

// close propagates congruence: f(a...) ~ f(b...) whenever a_i ~ b_i.
func (c *icc) close() {
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(c.apps); i++ {
			for j := i + 1; j < len(c.apps); j++ {
				a, b := c.apps[i], c.apps[j]
				if a.fn != b.fn || len(a.args) != len(b.args) {
					continue
				}
				if c.find(a.n) == c.find(b.n) {
					continue
				}
				cong := true
				for k := range a.args {
					if c.find(a.args[k]) != c.find(b.args[k]) {
						cong = false
						break
					}
				}
				if cong {
					c.union(a.n, b.n)
					changed = true
				}
			}
		}
	}
}
