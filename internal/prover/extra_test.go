package prover

import (
	"strings"
	"testing"

	"repro/internal/logic"
)

func TestPostponeRotatesGoals(t *testing.T) {
	th := logic.NewTheory("t")
	a, b := logic.Pred{Name: "a"}, logic.Pred{Name: "b"}
	p := NewGoal(th, "two", logic.Conj(a, b))
	if err := p.Split(); err != nil {
		t.Fatal(err)
	}
	g1, _ := p.Current()
	if err := p.Postpone(); err != nil {
		t.Fatal(err)
	}
	g2, _ := p.Current()
	if logic.FormulaEqual(g1.Cons[0], g2.Cons[0]) {
		t.Error("postpone did not rotate")
	}
	// Postpone with a single goal is a no-op.
	p2 := NewGoal(th, "one", a)
	if err := p2.Postpone(); err != nil {
		t.Fatal(err)
	}
}

func TestMarkProvedEnablesLemma(t *testing.T) {
	th := logic.NewTheory("t")
	a := logic.Pred{Name: "a"}
	p := NewGoal(th, "uses-lemma", a)
	if err := p.Lemma("helper"); err == nil {
		t.Fatal("unknown lemma accepted")
	}
	p.MarkProved("helper", a)
	if err := p.Lemma("helper"); err != nil {
		t.Fatal(err)
	}
	if err := p.Flatten(); err != nil {
		t.Fatal(err)
	}
	if !p.QED() {
		t.Error("lemma did not close the goal")
	}
}

func TestSequentRemoveAndReplaceErrors(t *testing.T) {
	s := Sequent{Ante: []logic.Formula{logic.True}, Cons: []logic.Formula{logic.False}}
	if err := s.Replace(0, logic.True); err == nil {
		t.Error("Replace(0) accepted")
	}
	if err := s.Remove(9); err == nil {
		t.Error("Remove out of range accepted")
	}
	if err := s.Replace(-1, logic.False); err != nil {
		t.Error(err)
	}
	if err := s.Remove(1); err != nil {
		t.Error(err)
	}
	if len(s.Cons) != 0 {
		t.Error("Remove failed")
	}
}

func TestIffInAntecedentFlattens(t *testing.T) {
	th := logic.NewTheory("t")
	a, b := logic.Pred{Name: "a"}, logic.Pred{Name: "b"}
	// (a ⇔ b) ∧ a ⊢ b.
	p := NewGoal(th, "iff", logic.Implies{
		L: logic.Conj(logic.Iff{L: a, R: b}, a),
		R: b,
	})
	if err := p.RunScript(`(flatten) (assert)`); err != nil {
		t.Fatal(err)
	}
	if !p.QED() {
		g, _ := p.Current()
		t.Fatalf("iff proof failed:\n%s", g.String())
	}
}

func TestIffInConsequentSplits(t *testing.T) {
	th := logic.NewTheory("t")
	a := logic.Pred{Name: "a"}
	// ⊢ a ⇔ a.
	p := NewGoal(th, "refl", logic.Iff{L: a, R: a})
	if err := p.RunScript(`(split) (flatten) (flatten)`); err != nil {
		t.Fatal(err)
	}
	if !p.QED() {
		t.Error("a ⇔ a not proved")
	}
}

func TestSplitNoBranchErrors(t *testing.T) {
	th := logic.NewTheory("t")
	p := NewGoal(th, "atom", logic.Pred{Name: "a"})
	if err := p.Split(); err == nil {
		t.Error("split on non-branching goal accepted")
	}
}

func TestPartialInstantiation(t *testing.T) {
	th := logic.NewTheory("t")
	// ∀x,y p(x,y) ⊢ p(1, anything): instantiate only x.
	p := NewGoal(th, "partial", logic.Implies{
		L: logic.Forall{
			Vars: []logic.Var{logic.V("X"), logic.V("Y")},
			Body: logic.Pred{Name: "p", Args: []logic.Term{logic.V("X"), logic.V("Y")}},
		},
		R: logic.Pred{Name: "p", Args: []logic.Term{logic.IntT(1), logic.IntT(2)}},
	})
	if err := p.Flatten(); err != nil {
		t.Fatal(err)
	}
	if err := p.Inst(-1, logic.IntT(1)); err != nil {
		t.Fatal(err)
	}
	g, _ := p.Current()
	fa, ok := g.Ante[0].(logic.Forall)
	if !ok || len(fa.Vars) != 1 || fa.Vars[0].Name != "Y" {
		t.Fatalf("partial instantiation wrong: %v", g.Ante[0])
	}
	if err := p.Inst(-1, logic.IntT(2)); err != nil {
		t.Fatal(err)
	}
	if err := p.Flatten(); err != nil {
		t.Fatal(err)
	}
	if !p.QED() {
		t.Error("not closed after full instantiation")
	}
}

func TestInstTooManyTerms(t *testing.T) {
	th := logic.NewTheory("t")
	p := NewGoal(th, "x", logic.Implies{
		L: logic.Forall{Vars: []logic.Var{logic.V("X")}, Body: logic.Pred{Name: "p", Args: []logic.Term{logic.V("X")}}},
		R: logic.False,
	})
	_ = p.Flatten()
	if err := p.Inst(-1, logic.IntT(1), logic.IntT(2)); err == nil {
		t.Error("excess instantiation terms accepted")
	}
}

func TestExpandSpecificOccurrenceCount(t *testing.T) {
	// Expansion replaces all occurrences at once and counts primitives.
	th := pathVectorTheory()
	p, err := New(th, "bestPathIsPath")
	if err != nil {
		t.Fatal(err)
	}
	before := p.PrimSteps
	if err := p.Expand("bestPath"); err != nil {
		t.Fatal(err)
	}
	if p.PrimSteps <= before {
		t.Error("expand recorded no primitive steps")
	}
}

func TestCaseBothBranchesRequired(t *testing.T) {
	th := logic.NewTheory("t")
	a := logic.Pred{Name: "a"}
	b := logic.Pred{Name: "b"}
	// ⊢ b with case a: neither branch closes (b unprovable).
	p := NewGoal(th, "stuck", b)
	if err := p.Case(a); err != nil {
		t.Fatal(err)
	}
	if err := p.RunScript(`(grind) (postpone) (grind)`); err != nil {
		t.Fatal(err)
	}
	if p.QED() {
		t.Error("proved an unprovable goal via case")
	}
	if p.Open() == 0 {
		t.Error("open goals miscounted")
	}
}

func TestTraceRecordsTactics(t *testing.T) {
	th := pathVectorTheory()
	res, err := ProveTheorem(th, "bestPathStrong", bestPathStrongScript)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(res.Trace, " ")
	for _, want := range []string{"(skosimp*)", `(expand "bestPath")`, "(assert)"} {
		if !strings.Contains(joined, want) {
			t.Errorf("trace missing %s: %v", want, res.Trace)
		}
	}
}

func TestGrindBudgetsRespected(t *testing.T) {
	// A goal with a deeply nested split structure should not blow up:
	// grind must terminate within its budget even on unprovable goals.
	th := logic.NewTheory("t")
	deep := logic.Formula(logic.Pred{Name: "z"})
	for i := 0; i < 12; i++ {
		deep = logic.Or{Fs: []logic.Formula{
			logic.And{Fs: []logic.Formula{deep, logic.Pred{Name: "a"}}},
			logic.Pred{Name: "b"},
		}}
	}
	p := NewGoal(th, "deep", logic.Implies{L: deep, R: logic.False})
	if err := p.Grind(); err != nil {
		t.Fatal(err)
	}
	if p.QED() {
		t.Error("proved an unprovable deep goal")
	}
}

func TestAssertOnlySimplifies(t *testing.T) {
	th := logic.NewTheory("t")
	// Ground arithmetic in an open goal gets simplified even when the goal
	// cannot close.
	p := NewGoal(th, "simp", logic.Implies{
		L: logic.Eq{L: logic.Fn("+", logic.IntT(2), logic.IntT(2)), R: logic.IntT(4)},
		R: logic.Pred{Name: "unprovable"},
	})
	if err := p.RunScript(`(flatten) (assert)`); err != nil {
		t.Fatal(err)
	}
	if p.QED() {
		t.Fatal("proved the unprovable")
	}
	g, _ := p.Current()
	// The trivially-true antecedent equation should be gone.
	if len(g.Ante) != 0 {
		t.Errorf("ground equation not simplified away: %v", g.Ante)
	}
}

func TestSkolemCounterSurvivesSessions(t *testing.T) {
	// Within one session, repeated skolemizations of the same base name
	// yield distinct constants.
	th := logic.NewTheory("t")
	p := NewGoal(th, "sk", logic.Implies{
		L: logic.Conj(
			logic.Exists{Vars: []logic.Var{logic.V("X")}, Body: logic.Pred{Name: "p", Args: []logic.Term{logic.V("X")}}},
			logic.Exists{Vars: []logic.Var{logic.V("X")}, Body: logic.Pred{Name: "q", Args: []logic.Term{logic.V("X")}}},
			logic.Exists{Vars: []logic.Var{logic.V("X")}, Body: logic.Pred{Name: "r", Args: []logic.Term{logic.V("X")}}},
		),
		R: logic.False,
	})
	if err := p.Skosimp(); err != nil {
		t.Fatal(err)
	}
	g, _ := p.Current()
	seen := map[string]bool{}
	for _, f := range g.Ante {
		pr, ok := f.(logic.Pred)
		if !ok {
			continue
		}
		k := pr.Args[0].String()
		if seen[k] {
			t.Fatalf("skolem constant %s reused", k)
		}
		seen[k] = true
	}
	if len(seen) != 3 {
		t.Errorf("expected 3 distinct skolems, saw %v", seen)
	}
}
