package prover

import (
	"math/big"
	"testing"
	"testing/quick"

	"repro/internal/logic"
)

// --- propositional soundness/completeness fuzzing ---------------------------
//
// The kernel must never prove an invalid propositional formula (soundness),
// and grind should prove every valid one in this small fragment
// (completeness of flatten+split+axiom for propositional logic).

type propRng struct{ s uint64 }

func (r *propRng) next() uint64 {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	return r.s >> 33
}

func (r *propRng) intn(n int) int { return int(r.next() % uint64(n)) }

var propAtoms = []logic.Formula{
	logic.Pred{Name: "p"},
	logic.Pred{Name: "q"},
	logic.Pred{Name: "r"},
}

func randProp(r *propRng, depth int) logic.Formula {
	if depth <= 0 || r.intn(3) == 0 {
		return propAtoms[r.intn(len(propAtoms))]
	}
	switch r.intn(6) {
	case 0:
		return logic.Not{F: randProp(r, depth-1)}
	case 1:
		return logic.And{Fs: []logic.Formula{randProp(r, depth-1), randProp(r, depth-1)}}
	case 2:
		return logic.Or{Fs: []logic.Formula{randProp(r, depth-1), randProp(r, depth-1)}}
	case 3:
		return logic.Implies{L: randProp(r, depth-1), R: randProp(r, depth-1)}
	case 4:
		return logic.Iff{L: randProp(r, depth-1), R: randProp(r, depth-1)}
	default:
		return propAtoms[r.intn(len(propAtoms))]
	}
}

// evalProp evaluates under an assignment of the three atoms.
func evalProp(f logic.Formula, env [3]bool) bool {
	switch x := f.(type) {
	case logic.Pred:
		switch x.Name {
		case "p":
			return env[0]
		case "q":
			return env[1]
		default:
			return env[2]
		}
	case logic.Not:
		return !evalProp(x.F, env)
	case logic.And:
		for _, g := range x.Fs {
			if !evalProp(g, env) {
				return false
			}
		}
		return true
	case logic.Or:
		for _, g := range x.Fs {
			if evalProp(g, env) {
				return true
			}
		}
		return false
	case logic.Implies:
		return !evalProp(x.L, env) || evalProp(x.R, env)
	case logic.Iff:
		return evalProp(x.L, env) == evalProp(x.R, env)
	case logic.TruthVal:
		return x.B
	}
	return false
}

func propValid(f logic.Formula) bool {
	for mask := 0; mask < 8; mask++ {
		env := [3]bool{mask&1 != 0, mask&2 != 0, mask&4 != 0}
		if !evalProp(f, env) {
			return false
		}
	}
	return true
}

func TestGrindPropositionalSoundAndComplete(t *testing.T) {
	th := logic.NewTheory("prop")
	rng := &propRng{s: 0xfeedface}
	proved, valid := 0, 0
	for i := 0; i < 400; i++ {
		f := randProp(rng, 4)
		isValid := propValid(f)
		p := NewGoal(th, "fuzz", f)
		if err := p.Grind(); err != nil {
			t.Fatal(err)
		}
		if p.QED() && !isValid {
			t.Fatalf("SOUNDNESS VIOLATION: proved invalid formula %s", f)
		}
		if isValid && !p.QED() {
			t.Fatalf("propositional completeness gap: valid formula left open: %s", f)
		}
		if p.QED() {
			proved++
		}
		if isValid {
			valid++
		}
	}
	if proved != valid {
		t.Fatalf("proved %d, valid %d", proved, valid)
	}
	if valid == 0 || valid == 400 {
		t.Fatalf("degenerate fuzz distribution: %d/400 valid", valid)
	}
}

// --- Fourier–Motzkin soundness fuzzing ---------------------------------------
//
// Whenever the linear system reports infeasible, brute force over a small
// integer box must confirm there is no solution.

func TestFourierMotzkinSoundness(t *testing.T) {
	rng := &propRng{s: 0xabad1dea}
	vars := []logic.Term{logic.V("X"), logic.V("Y"), logic.V("Z")}
	randTerm := func() logic.Term {
		v := vars[rng.intn(len(vars))]
		c := int64(rng.intn(9)) - 4
		switch rng.intn(3) {
		case 0:
			return v
		case 1:
			return logic.Fn("+", v, logic.IntT(c))
		default:
			return logic.Fn("-", v, vars[rng.intn(len(vars))])
		}
	}
	ops := []string{"<", "<=", ">", ">="}
	infeasibleCount := 0
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.intn(4)
		var cmps []logic.Cmp
		lp := newLinearSystem()
		for i := 0; i < n; i++ {
			c := logic.Cmp{Op: ops[rng.intn(len(ops))], L: randTerm(), R: randTerm()}
			cmps = append(cmps, c)
			lp.addCmp(c, false)
		}
		if !lp.infeasible() {
			continue
		}
		infeasibleCount++
		// Brute force: any integer assignment in [-8, 8]^3 satisfying all?
		for x := int64(-8); x <= 8; x++ {
			for y := int64(-8); y <= 8; y++ {
				for z := int64(-8); z <= 8; z++ {
					s := logic.Subst{"X": logic.IntT(x), "Y": logic.IntT(y), "Z": logic.IntT(z)}
					all := true
					for _, c := range cmps {
						lv, err1 := logic.EvalGround(s.ApplyTerm(c.L))
						rv, err2 := logic.EvalGround(s.ApplyTerm(c.R))
						if err1 != nil || err2 != nil {
							t.Fatalf("eval error: %v %v", err1, err2)
						}
						ok := false
						switch c.Op {
						case "<":
							ok = lv.I < rv.I
						case "<=":
							ok = lv.I <= rv.I
						case ">":
							ok = lv.I > rv.I
						case ">=":
							ok = lv.I >= rv.I
						}
						if !ok {
							all = false
							break
						}
					}
					if all {
						t.Fatalf("FM SOUNDNESS VIOLATION: reported infeasible but (%d,%d,%d) satisfies %v", x, y, z, cmps)
					}
				}
			}
		}
	}
	if infeasibleCount == 0 {
		t.Fatal("fuzz never produced an infeasible system; weak test")
	}
}

func TestFourierMotzkinKnownSystems(t *testing.T) {
	mk := func(op string, l, r logic.Term) logic.Cmp { return logic.Cmp{Op: op, L: l, R: r} }
	x, y := logic.V("X"), logic.V("Y")

	// x <= y, y <= x, x < y: infeasible.
	lp := newLinearSystem()
	lp.addCmp(mk("<=", x, y), false)
	lp.addCmp(mk("<=", y, x), false)
	lp.addCmp(mk("<", x, y), false)
	if !lp.infeasible() {
		t.Error("equality + strict not detected")
	}

	// x < y, y < x+1: integer-infeasible (tightening), rational-feasible.
	lp2 := newLinearSystem()
	lp2.addCmp(mk("<", x, y), false)
	lp2.addCmp(mk("<", y, logic.Fn("+", x, logic.IntT(1))), false)
	if !lp2.infeasible() {
		t.Error("integer tightening failed: x < y < x+1 has no integer solution")
	}

	// x <= y alone: feasible.
	lp3 := newLinearSystem()
	lp3.addCmp(mk("<=", x, y), false)
	if lp3.infeasible() {
		t.Error("feasible system reported infeasible")
	}

	// Constants: 3 <= 2 infeasible.
	lp4 := newLinearSystem()
	lp4.addCmp(mk("<=", logic.IntT(3), logic.IntT(2)), false)
	if !lp4.infeasible() {
		t.Error("constant contradiction missed")
	}
}

func TestLinearizeCoefficients(t *testing.T) {
	// 2*X + 3 - X linearizes to X + 3.
	e, ok := linearize(logic.Fn("-", logic.Fn("+", logic.Fn("*", logic.IntT(2), logic.V("X")), logic.IntT(3)), logic.V("X")))
	if !ok {
		t.Fatal("linearize failed")
	}
	if e.konst.Cmp(big.NewRat(3, 1)) != 0 {
		t.Errorf("constant = %v, want 3", e.konst)
	}
	if c := e.coeffs["X"]; c == nil || c.Cmp(big.NewRat(1, 1)) != 0 {
		t.Errorf("coeff X = %v, want 1", c)
	}
	// Non-numeric terms refuse.
	if _, ok := linearize(logic.StrT("nope")); ok {
		t.Error("linearized a string")
	}
	// Nonlinear products become opaque atoms.
	e2, ok := linearize(logic.Fn("*", logic.V("X"), logic.V("Y")))
	if !ok {
		t.Fatal("opaque product refused")
	}
	if len(e2.coeffs) != 1 {
		t.Errorf("opaque product coeffs = %v", e2.coeffs)
	}
}

// --- quantifier fuzz: grind must not prove unprovable simple quantified
// statements -----------------------------------------------------------------

func TestGrindQuantifiedSoundness(t *testing.T) {
	th := logic.NewTheory("q")
	// ∀x p(x) ⇒ p(a): valid, provable.
	valid := logic.Implies{
		L: logic.Forall{Vars: []logic.Var{logic.V("X")}, Body: logic.Pred{Name: "p", Args: []logic.Term{logic.V("X")}}},
		R: logic.Pred{Name: "p", Args: []logic.Term{logic.App{Fn: "a"}}},
	}
	p := NewGoal(th, "v", valid)
	if err := p.RunScript(`(skosimp*) (grind)`); err != nil {
		t.Fatal(err)
	}
	if !p.QED() {
		t.Error("∀-instantiation proof failed")
	}

	// p(a) ⇒ ∀x p(x): invalid, must stay open.
	invalid := logic.Implies{
		L: logic.Pred{Name: "p", Args: []logic.Term{logic.App{Fn: "a"}}},
		R: logic.Forall{Vars: []logic.Var{logic.V("X")}, Body: logic.Pred{Name: "p", Args: []logic.Term{logic.V("X")}}},
	}
	p2 := NewGoal(th, "i", invalid)
	if err := p2.RunScript(`(skosimp*) (grind)`); err != nil {
		t.Fatal(err)
	}
	if p2.QED() {
		t.Error("SOUNDNESS VIOLATION: proved p(a) ⇒ ∀x p(x)")
	}

	// ∃x p(x) ⇒ p(a): invalid (the witness need not be a).
	invalid2 := logic.Implies{
		L: logic.Exists{Vars: []logic.Var{logic.V("X")}, Body: logic.Pred{Name: "p", Args: []logic.Term{logic.V("X")}}},
		R: logic.Pred{Name: "p", Args: []logic.Term{logic.App{Fn: "a"}}},
	}
	p3 := NewGoal(th, "i2", invalid2)
	if err := p3.RunScript(`(skosimp*) (grind)`); err != nil {
		t.Fatal(err)
	}
	if p3.QED() {
		t.Error("SOUNDNESS VIOLATION: proved ∃x p(x) ⇒ p(a)")
	}

	// p(a) ⇒ ∃x p(x): valid.
	valid2 := logic.Implies{
		L: logic.Pred{Name: "p", Args: []logic.Term{logic.App{Fn: "a"}}},
		R: logic.Exists{Vars: []logic.Var{logic.V("X")}, Body: logic.Pred{Name: "p", Args: []logic.Term{logic.V("X")}}},
	}
	p4 := NewGoal(th, "v2", valid2)
	if err := p4.RunScript(`(skosimp*) (grind)`); err != nil {
		t.Fatal(err)
	}
	if !p4.QED() {
		t.Error("∃-introduction proof failed")
	}
}

func TestCongruenceClosureQuick(t *testing.T) {
	// a=b ∧ b=c ⊢ f(a)=f(c) for random chains.
	f := func(n uint8) bool {
		depth := int(n%4) + 1
		th := logic.NewTheory("cc")
		var ante []logic.Formula
		for i := 0; i < depth; i++ {
			ante = append(ante, logic.Eq{
				L: logic.App{Fn: name(i)},
				R: logic.App{Fn: name(i + 1)},
			})
		}
		goal := logic.Implies{
			L: logic.Conj(ante...),
			R: logic.Eq{L: logic.Fn("g", logic.App{Fn: name(0)}), R: logic.Fn("g", logic.App{Fn: name(depth)})},
		}
		p := NewGoal(th, "cc", goal)
		if err := p.RunScript(`(flatten) (assert)`); err != nil {
			return false
		}
		return p.QED()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func name(i int) string { return string(rune('a' + i)) }
