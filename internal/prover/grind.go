package prover

import (
	"repro/internal/logic"
)

// grind search bounds. Grind is best-effort automation: exceeding a bound
// leaves goals open rather than looping.
const (
	grindMaxDepth     = 24
	grindMaxInstTries = 8
	grindMaxBranches  = 64
)

// Grind is the automated strategy (PVS `grind`): it repeatedly skolemizes,
// flattens, runs the decision procedure, expands non-recursive definitions,
// splits, and heuristically instantiates quantifiers by matching atoms in
// the goal. It either closes the current goal or leaves the residual
// subgoals open.
func (p *Prover) Grind() error {
	if len(p.goals) == 0 {
		return ErrNoOpenGoal
	}
	defer p.step("(grind)")()
	wasAuto := p.inAuto
	p.inAuto = true
	defer func() { p.inAuto = wasAuto }()

	g := p.pop()
	residual := p.solve(g, grindMaxDepth)
	p.push(residual...)
	return nil
}

// nonRecursiveDefs returns the definitions that never (transitively) reach
// themselves, which grind may safely auto-expand.
func (p *Prover) nonRecursiveDefs() map[string]bool {
	if p.Theory == nil {
		return nil
	}
	reach := map[string]map[string]bool{}
	for _, d := range p.Theory.Inductives {
		reach[d.Name] = logic.Predicates(d.Body)
	}
	// Transitive closure.
	for changed := true; changed; {
		changed = false
		for name, set := range reach {
			for callee := range set {
				for indirect := range reach[callee] {
					if !set[indirect] {
						set[indirect] = true
						changed = true
					}
				}
			}
			reach[name] = set
		}
	}
	out := map[string]bool{}
	for name, set := range reach {
		if !set[name] {
			out[name] = true
		}
	}
	return out
}

// solve attempts to close g, returning residual open goals (nil if closed).
func (p *Prover) solve(g Sequent, depth int) []Sequent {
	if depth <= 0 {
		return []Sequent{g}
	}
	// Saturate with skolemization + flattening.
	cur := &g
	for {
		ng, closed := p.flattenFully(*cur)
		if closed {
			return nil
		}
		cur = ng
		sk, changed := p.skolemizeOnce(*cur)
		if !changed {
			break
		}
		cur = &sk
	}
	// Decision procedure.
	ng, closed := p.assertGoal(*cur)
	if closed {
		return nil
	}
	cur = ng

	// Expand non-recursive definitions once.
	if expanded, ok := p.autoExpand(*cur); ok {
		return p.solve(expanded, depth-1)
	}

	// Branch on the first splittable formula.
	if subs, ok := p.splitGoal(*cur); ok {
		if len(subs) > grindMaxBranches {
			return []Sequent{*cur}
		}
		var residual []Sequent
		for _, sg := range subs {
			residual = append(residual, p.solve(sg, depth-1)...)
		}
		return residual
	}

	// Heuristic quantifier instantiation.
	for _, cand := range p.instCandidates(*cur) {
		trial := p.solve(cand, depth-1)
		if trial == nil {
			return nil
		}
	}
	return []Sequent{*cur}
}

// autoExpand expands all occurrences of non-recursive definitions.
func (p *Prover) autoExpand(g Sequent) (Sequent, bool) {
	nonRec := p.nonRecursiveDefs()
	if len(nonRec) == 0 {
		return g, false
	}
	ng := g.Clone()
	count := 0
	rewrite := func(f logic.Formula) logic.Formula {
		for name := range nonRec {
			def, ok := p.Theory.Lookup(name)
			if !ok {
				continue
			}
			f = replacePred(f, name, func(pr logic.Pred) logic.Formula {
				body, err := def.Instantiate(pr.Args)
				if err != nil {
					return pr
				}
				count++
				p.prim()
				return body
			})
		}
		return f
	}
	for i, f := range ng.Ante {
		ng.Ante[i] = rewrite(f)
	}
	for i, f := range ng.Cons {
		ng.Cons[i] = rewrite(f)
	}
	if count == 0 {
		return g, false
	}
	return ng, true
}

// splitGoal performs the first applicable branching rule, like Split but
// without step accounting (grind internal).
func (p *Prover) splitGoal(g Sequent) ([]Sequent, bool) {
	for i, f := range g.Cons {
		switch x := f.(type) {
		case logic.And:
			subs := make([]Sequent, len(x.Fs))
			for j, c := range x.Fs {
				ng := g.Clone()
				ng.Cons[i] = c
				subs[j] = ng
			}
			p.prim()
			return subs, true
		case logic.Iff:
			g1 := g.Clone()
			g1.Cons[i] = logic.Implies{L: x.L, R: x.R}
			g2 := g.Clone()
			g2.Cons[i] = logic.Implies{L: x.R, R: x.L}
			p.prim()
			return []Sequent{g1, g2}, true
		}
	}
	for i, f := range g.Ante {
		switch x := f.(type) {
		case logic.Or:
			subs := make([]Sequent, len(x.Fs))
			for j, c := range x.Fs {
				ng := g.Clone()
				ng.Ante[i] = c
				subs[j] = ng
			}
			p.prim()
			return subs, true
		case logic.Implies:
			g1 := g.Clone()
			_ = g1.Remove(-(i + 1))
			g1.Cons = append(g1.Cons, x.L)
			g2 := g.Clone()
			g2.Ante[i] = x.R
			p.prim()
			return []Sequent{g1, g2}, true
		}
	}
	return nil, false
}

// instCandidates proposes goals obtained by instantiating an antecedent
// FORALL (or consequent EXISTS) with substitutions found by matching its
// atoms against atoms present in the sequent.
func (p *Prover) instCandidates(g Sequent) []Sequent {
	var out []Sequent
	// Atoms available for matching.
	var anteAtoms, consAtoms []logic.Pred
	for _, f := range g.Ante {
		if pr, ok := f.(logic.Pred); ok {
			anteAtoms = append(anteAtoms, pr)
		}
	}
	for _, f := range g.Cons {
		if pr, ok := f.(logic.Pred); ok {
			consAtoms = append(consAtoms, pr)
		}
	}

	tryQuant := func(idx int, vars []logic.Var, body logic.Formula, pool []logic.Pred) {
		bound := map[string]bool{}
		for _, v := range vars {
			bound[v.Name] = true
		}
		patterns := collectAtoms(body)
		for _, pat := range patterns {
			for _, atom := range pool {
				if len(out) >= grindMaxInstTries {
					return
				}
				s := logic.Subst{}
				if !logic.MatchPred(pat, atom, s) {
					continue
				}
				// Keep only bindings for the quantified variables, and
				// require all of them to be bound.
				terms := make([]logic.Term, len(vars))
				complete := true
				for i, v := range vars {
					t, ok := s[v.Name]
					if !ok {
						complete = false
						break
					}
					terms[i] = t
				}
				if !complete {
					continue
				}
				inst := logic.Subst{}
				for i, v := range vars {
					inst[v.Name] = terms[i]
				}
				ng := g.Clone()
				_ = ng.Replace(idx, inst.Apply(body))
				p.prim()
				out = append(out, ng)
			}
		}
	}

	for i, f := range g.Ante {
		if fa, ok := f.(logic.Forall); ok {
			tryQuant(-(i + 1), fa.Vars, fa.Body, anteAtoms)
			// Also try matching against consequent atoms: useful when the
			// universal's conclusion should align with the goal.
			tryQuant(-(i + 1), fa.Vars, fa.Body, consAtoms)
		}
	}
	for i, f := range g.Cons {
		if ex, ok := f.(logic.Exists); ok {
			tryQuant(i+1, ex.Vars, ex.Body, anteAtoms)
		}
	}
	if len(out) > grindMaxInstTries {
		out = out[:grindMaxInstTries]
	}
	return out
}

// collectAtoms gathers the predicate atoms of a formula (any polarity).
func collectAtoms(f logic.Formula) []logic.Pred {
	var atoms []logic.Pred
	var walk func(logic.Formula)
	walk = func(f logic.Formula) {
		switch x := f.(type) {
		case logic.Pred:
			atoms = append(atoms, x)
		case logic.Not:
			walk(x.F)
		case logic.And:
			for _, g := range x.Fs {
				walk(g)
			}
		case logic.Or:
			for _, g := range x.Fs {
				walk(g)
			}
		case logic.Implies:
			walk(x.L)
			walk(x.R)
		case logic.Iff:
			walk(x.L)
			walk(x.R)
		case logic.Forall:
			walk(x.Body)
		case logic.Exists:
			walk(x.Body)
		}
	}
	walk(f)
	return atoms
}
