package prover

import (
	"sort"
	"sync"

	"repro/internal/logic"
)

// grind search bounds. Grind is best-effort automation: exceeding a bound
// leaves goals open rather than looping.
const (
	grindMaxDepth     = 24
	grindMaxInstTries = 8
	grindMaxBranches  = 64
)

// Grind is the automated strategy (PVS `grind`): it repeatedly skolemizes,
// flattens, runs the decision procedure, expands non-recursive definitions,
// splits, and heuristically instantiates quantifiers by matching atoms in
// the goal. It either closes the current goal or leaves the residual
// subgoals open.
func (p *Prover) Grind() error {
	if len(p.goals) == 0 {
		return ErrNoOpenGoal
	}
	defer p.step("(grind)")()
	wasAuto := p.inAuto
	p.inAuto = true
	defer func() { p.inAuto = wasAuto }()

	// Computed once per grind: the sorted auto-expandable definitions (the
	// sort also makes expansion order deterministic) and, for the interned
	// kernel, the sub-goal memo. Both are inherited by branch clones.
	p.nonRecN = p.nonRecSortedNames()
	if !p.structural && p.memo == nil {
		p.memo = newGrindMemo()
	}

	g := p.pop()
	residual := p.solve(g, grindMaxDepth)
	p.push(residual...)
	return nil
}

// nonRecSortedNames returns the auto-expandable definition names in sorted
// order.
func (p *Prover) nonRecSortedNames() []string {
	nonRec := p.nonRecursiveDefs()
	names := make([]string, 0, len(nonRec))
	for name := range nonRec {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// nonRecursiveDefs returns the definitions that never (transitively) reach
// themselves, which grind may safely auto-expand.
func (p *Prover) nonRecursiveDefs() map[string]bool {
	if p.Theory == nil {
		return nil
	}
	reach := map[string]map[string]bool{}
	for _, d := range p.Theory.Inductives {
		reach[d.Name] = logic.Predicates(d.Body)
	}
	// Transitive closure.
	for changed := true; changed; {
		changed = false
		for name, set := range reach {
			for callee := range set {
				for indirect := range reach[callee] {
					if !set[indirect] {
						set[indirect] = true
						changed = true
					}
				}
			}
			reach[name] = set
		}
	}
	out := map[string]bool{}
	for name, set := range reach {
		if !set[name] {
			out[name] = true
		}
	}
	return out
}

// solve attempts to close g, returning residual open goals (nil if closed).
// The interned kernel consults the sub-goal memo first: a repeated
// sub-sequent at the same depth replays the recorded primitive-inference
// count instead of re-searching, so step accounting matches the uncached
// run exactly (a hit replays precisely what recomputing would have counted).
func (p *Prover) solve(g Sequent, depth int) []Sequent {
	if depth <= 0 {
		return []Sequent{g}
	}
	// Coarse cancellation boundary: a fired context makes grind hand every
	// remaining sub-goal back unsolved (the proof stays open, never QED),
	// and the script loop surfaces ErrCancelled.
	if p.cancelled() {
		return []Sequent{g}
	}
	if p.memo != nil {
		if prim, ok := p.memo.lookup(g, depth); ok {
			p.addPrim(prim)
			return nil
		}
	}
	prim0 := p.PrimSteps
	res := p.solveBody(g, depth)
	if res == nil && p.memo != nil {
		p.memo.store(g, depth, p.PrimSteps-prim0)
	}
	return res
}

func (p *Prover) solveBody(g Sequent, depth int) []Sequent {
	// Saturate with skolemization + flattening.
	cur := &g
	for {
		ng, closed := p.flattenFully(*cur)
		if closed {
			return nil
		}
		cur = ng
		sk, changed := p.skolemizeOnce(*cur)
		if !changed {
			break
		}
		cur = &sk
	}
	// Decision procedure.
	ng, closed := p.assertGoal(*cur)
	if closed {
		return nil
	}
	cur = ng

	// Expand non-recursive definitions once.
	if expanded, ok := p.autoExpand(*cur); ok {
		return p.solve(expanded, depth-1)
	}

	// Branch on the first splittable formula. The branches are independent
	// sub-proofs, so with workers enabled they run concurrently.
	if subs, ok := p.splitGoal(*cur); ok {
		if len(subs) > grindMaxBranches {
			return []Sequent{*cur}
		}
		return p.solveAll(subs, depth-1)
	}

	// Heuristic quantifier instantiation.
	for _, cand := range p.instCandidates(*cur) {
		trial := p.solve(cand, depth-1)
		if trial == nil {
			return nil
		}
	}
	return []Sequent{*cur}
}

// solveAll discharges independent split branches, returning the
// concatenated residuals in branch order. Without workers it is a plain
// sequential loop. With workers, each extra branch runs on a clone when a
// semaphore slot is free (inline otherwise — acquisition never blocks, so
// nested splits cannot deadlock), and the clones' step counters and skolem
// counters are merged in branch order after the join. Branch verdicts and
// counts do not depend on scheduling: each branch's search is a function of
// its sub-goal alone, and merging sums are order-insensitive.
func (p *Prover) solveAll(subs []Sequent, depth int) []Sequent {
	if p.sem == nil || len(subs) < 2 {
		var residual []Sequent
		for _, sg := range subs {
			residual = append(residual, p.solve(sg, depth)...)
		}
		return residual
	}
	results := make([][]Sequent, len(subs))
	clones := make([]*Prover, len(subs))
	var wg sync.WaitGroup
	var inline []int
	for i := 1; i < len(subs); i++ {
		select {
		case p.sem <- struct{}{}:
			c := p.branchClone()
			clones[i] = c
			wg.Add(1)
			go func(i int, c *Prover) {
				defer wg.Done()
				defer func() { <-p.sem }()
				results[i] = c.solve(subs[i], depth)
			}(i, c)
		default:
			inline = append(inline, i)
		}
	}
	results[0] = p.solve(subs[0], depth)
	for _, i := range inline {
		results[i] = p.solve(subs[i], depth)
	}
	wg.Wait()
	var residual []Sequent
	for i, r := range results {
		if c := clones[i]; c != nil {
			p.PrimSteps += c.PrimSteps
			p.AutoPrim += c.AutoPrim
			for base, n := range c.skCounter {
				if n > p.skCounter[base] {
					p.skCounter[base] = n
				}
			}
		}
		residual = append(residual, r...)
	}
	return residual
}

// autoExpand expands all occurrences of non-recursive definitions.
func (p *Prover) autoExpand(g Sequent) (Sequent, bool) {
	nonRec := p.nonRecN
	if nonRec == nil {
		nonRec = p.nonRecSortedNames()
	}
	if len(nonRec) == 0 {
		return g, false
	}
	ng := g.Clone()
	count := 0
	rewrite := func(f logic.Formula) logic.Formula {
		for _, name := range nonRec {
			def, ok := p.Theory.Lookup(name)
			if !ok {
				continue
			}
			f = replacePred(f, name, func(pr logic.Pred) logic.Formula {
				body, err := def.Instantiate(pr.Args)
				if err != nil {
					return pr
				}
				count++
				p.prim()
				return body
			})
		}
		return f
	}
	for i, f := range ng.Ante {
		ng.Ante[i] = rewrite(f)
	}
	for i, f := range ng.Cons {
		ng.Cons[i] = rewrite(f)
	}
	if count == 0 {
		return g, false
	}
	return ng, true
}

// splitGoal performs the first applicable branching rule, like Split but
// without step accounting (grind internal).
func (p *Prover) splitGoal(g Sequent) ([]Sequent, bool) {
	for i, f := range g.Cons {
		switch x := f.(type) {
		case logic.And:
			subs := make([]Sequent, len(x.Fs))
			for j, c := range x.Fs {
				ng := g.Clone()
				ng.Cons[i] = c
				subs[j] = ng
			}
			p.prim()
			return subs, true
		case logic.Iff:
			g1 := g.Clone()
			g1.Cons[i] = logic.Implies{L: x.L, R: x.R}
			g2 := g.Clone()
			g2.Cons[i] = logic.Implies{L: x.R, R: x.L}
			p.prim()
			return []Sequent{g1, g2}, true
		}
	}
	for i, f := range g.Ante {
		switch x := f.(type) {
		case logic.Or:
			subs := make([]Sequent, len(x.Fs))
			for j, c := range x.Fs {
				ng := g.Clone()
				ng.Ante[i] = c
				subs[j] = ng
			}
			p.prim()
			return subs, true
		case logic.Implies:
			g1 := g.Clone()
			_ = g1.Remove(-(i + 1))
			g1.Cons = append(g1.Cons, x.L)
			g2 := g.Clone()
			g2.Ante[i] = x.R
			p.prim()
			return []Sequent{g1, g2}, true
		}
	}
	return nil, false
}

// instCandidates proposes goals obtained by instantiating an antecedent
// FORALL (or consequent EXISTS) with substitutions found by matching its
// atoms against atoms present in the sequent.
func (p *Prover) instCandidates(g Sequent) []Sequent {
	var out []Sequent
	// Atoms available for matching.
	var anteAtoms, consAtoms []logic.Pred
	for _, f := range g.Ante {
		if pr, ok := f.(logic.Pred); ok {
			anteAtoms = append(anteAtoms, pr)
		}
	}
	for _, f := range g.Cons {
		if pr, ok := f.(logic.Pred); ok {
			consAtoms = append(consAtoms, pr)
		}
	}

	tryQuant := func(idx int, vars []logic.Var, body logic.Formula, pool []logic.Pred) {
		bound := map[string]bool{}
		for _, v := range vars {
			bound[v.Name] = true
		}
		patterns := collectAtoms(body)
		for _, pat := range patterns {
			for _, atom := range pool {
				if len(out) >= grindMaxInstTries {
					return
				}
				s := logic.Subst{}
				if !logic.MatchPred(pat, atom, s) {
					continue
				}
				// Keep only bindings for the quantified variables, and
				// require all of them to be bound.
				terms := make([]logic.Term, len(vars))
				complete := true
				for i, v := range vars {
					t, ok := s[v.Name]
					if !ok {
						complete = false
						break
					}
					terms[i] = t
				}
				if !complete {
					continue
				}
				inst := logic.Subst{}
				for i, v := range vars {
					inst[v.Name] = terms[i]
				}
				ng := g.Clone()
				_ = ng.Replace(idx, inst.Apply(body))
				p.prim()
				out = append(out, ng)
			}
		}
	}

	for i, f := range g.Ante {
		if fa, ok := f.(logic.Forall); ok {
			tryQuant(-(i + 1), fa.Vars, fa.Body, anteAtoms)
			// Also try matching against consequent atoms: useful when the
			// universal's conclusion should align with the goal.
			tryQuant(-(i + 1), fa.Vars, fa.Body, consAtoms)
		}
	}
	for i, f := range g.Cons {
		if ex, ok := f.(logic.Exists); ok {
			tryQuant(i+1, ex.Vars, ex.Body, anteAtoms)
		}
	}
	if len(out) > grindMaxInstTries {
		out = out[:grindMaxInstTries]
	}
	return out
}

// collectAtoms gathers the predicate atoms of a formula (any polarity).
func collectAtoms(f logic.Formula) []logic.Pred {
	var atoms []logic.Pred
	var walk func(logic.Formula)
	walk = func(f logic.Formula) {
		switch x := f.(type) {
		case logic.Pred:
			atoms = append(atoms, x)
		case logic.Not:
			walk(x.F)
		case logic.And:
			for _, g := range x.Fs {
				walk(g)
			}
		case logic.Or:
			for _, g := range x.Fs {
				walk(g)
			}
		case logic.Implies:
			walk(x.L)
			walk(x.R)
		case logic.Iff:
			walk(x.L)
			walk(x.R)
		case logic.Forall:
			walk(x.Body)
		case logic.Exists:
			walk(x.Body)
		}
	}
	walk(f)
	return atoms
}
