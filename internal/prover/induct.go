package prover

import (
	"fmt"

	"repro/internal/logic"
)

// Induct performs fixpoint (rule) induction on an inductive predicate
// (PVS `induct` specialized to inductive definitions, as used in §3.2 of
// the paper to generalize BGP proofs "to an arbitrary large network via
// induction").
//
// The current goal must be of the form
//
//	⊢ FORALL x̄: P(x̄) ⇒ Q
//
// where P is an inductive definition of the theory and the argument vector
// of P is exactly the quantified variables. For each defining clause C of
// P, Induct generates the subgoal
//
//	⊢ FORALL x̄: C† ⇒ Q
//
// where C† is C with every recursive occurrence P(s̄) strengthened to
// P(s̄) AND Q[x̄ := s̄] (the induction hypothesis). This is the standard
// induction principle of the least fixed point.
func (p *Prover) Induct(name string) error {
	if len(p.goals) == 0 {
		return ErrNoOpenGoal
	}
	def, ok := p.Theory.Lookup(name)
	if !ok {
		return fmt.Errorf("prover: induct: no inductive definition %q", name)
	}
	g := p.goals[len(p.goals)-1]
	if len(g.Ante) != 0 || len(g.Cons) != 1 {
		return fmt.Errorf("prover: induct: goal must be a single consequent formula")
	}
	fa, ok := g.Cons[0].(logic.Forall)
	if !ok {
		return fmt.Errorf("prover: induct: goal must be universally quantified")
	}
	imp, ok := fa.Body.(logic.Implies)
	if !ok {
		return fmt.Errorf("prover: induct: goal body must be an implication P(x̄) => Q")
	}
	head, ok := imp.L.(logic.Pred)
	if !ok || head.Name != name {
		return fmt.Errorf("prover: induct: antecedent of goal must be %s(...)", name)
	}
	if len(head.Args) != len(def.Params) {
		return fmt.Errorf("prover: induct: %s has %d parameters, goal applies %d", name, len(def.Params), len(head.Args))
	}
	// The arguments must be exactly the quantified variables (distinct).
	argVars := make([]logic.Var, len(head.Args))
	seen := map[string]bool{}
	quantified := map[string]bool{}
	for _, v := range fa.Vars {
		quantified[v.Name] = true
	}
	for i, a := range head.Args {
		v, ok := a.(logic.Var)
		if !ok || !quantified[v.Name] || seen[v.Name] {
			return fmt.Errorf("prover: induct: argument %d of %s must be a distinct quantified variable", i, name)
		}
		seen[v.Name] = true
		argVars[i] = v
	}
	prop := imp.R

	defer p.step(fmt.Sprintf("(induct %q)", name))()
	p.pop()

	var subgoals []Sequent
	for _, clause := range def.Clauses() {
		// Rename the clause from the definition's formal parameters to the
		// goal's variables.
		rho := logic.Subst{}
		for i, par := range def.Params {
			rho[par.Name] = argVars[i]
		}
		c := rho.Apply(clause)
		// Strengthen recursive occurrences with the induction hypothesis.
		c = replacePred(c, name, func(pr logic.Pred) logic.Formula {
			if len(pr.Args) != len(argVars) {
				return pr
			}
			ih := logic.Subst{}
			for i, v := range argVars {
				ih[v.Name] = pr.Args[i]
			}
			p.prim()
			return logic.Conj(pr, ih.Apply(prop))
		})
		sub := Sequent{Cons: []logic.Formula{
			logic.Forall{Vars: fa.Vars, Body: logic.Implies{L: c, R: prop}},
		}}
		p.prim()
		subgoals = append(subgoals, sub)
	}
	p.pushSubgoals(subgoals...)
	return nil
}
