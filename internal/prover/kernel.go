package prover

import (
	"sync"

	"repro/internal/logic"
)

// Kernel modes. The default kernel is the interned one: congruence closure
// keyed by hash-consed term ids, memoized simplification, a grind sub-goal
// memo, and (when workers are enabled) parallel discharge of independent
// split branches. UseSeedKernel switches a session back to the seed
// structural kernel — string-keyed congruence closure, no memos, strictly
// sequential — which SeqProve exposes as the oracle for equivalence tests.

// UseSeedKernel switches the session to the seed structural kernel. It must
// be called before running tactics.
func (p *Prover) UseSeedKernel() {
	p.structural = true
	p.workers = 0
	p.sem = nil
}

// EnableWorkers lets grind discharge up to n independent split branches
// concurrently. n <= 1 (or the seed kernel) keeps grind sequential. Branch
// results are merged in branch order, so step counts and verdicts do not
// depend on scheduling.
func (p *Prover) EnableWorkers(n int) {
	if p.structural || n <= 1 {
		p.workers = 0
		p.sem = nil
		return
	}
	p.workers = n
	// The calling goroutine counts as one worker; the semaphore holds the
	// extra slots. Acquisition is non-blocking (run inline on failure), so
	// nested splits cannot deadlock.
	p.sem = make(chan struct{}, n-1)
}

// Workers returns the configured grind concurrency (0 or 1 = sequential).
func (p *Prover) Workers() int {
	if p.workers == 0 {
		return 1
	}
	return p.workers
}

// branchClone builds a lightweight prover for one grind branch. The clone
// shares the read-only session state (theory, proved lemmas, grind memo,
// worker semaphore) and gets its own step counters — zeroed, so the parent
// can merge the deltas — and its own skolem counter snapshot, so branch
// skolem names do not depend on sibling scheduling.
func (p *Prover) branchClone() *Prover {
	sk := make(map[string]int, len(p.skCounter))
	for k, v := range p.skCounter {
		sk[k] = v
	}
	return &Prover{
		Theory:     p.Theory,
		Theorem:    p.Theorem,
		proved:     p.proved,
		skCounter:  sk,
		started:    p.started,
		inAuto:     true,
		structural: p.structural,
		workers:    p.workers,
		sem:        p.sem,
		memo:       p.memo,
		nonRecN:    p.nonRecN,
		ctx:        p.ctx,
	}
}

// addPrim replays n primitive inferences into the step accounting (memo
// hits and branch merges).
func (p *Prover) addPrim(n int) {
	p.PrimSteps += n
	if p.inAuto {
		p.AutoPrim += n
	}
}

// newCC picks the congruence-closure engine for the session's kernel.
func (p *Prover) newCC() ccEngine {
	if p.structural {
		return newCongruence()
	}
	return newICC()
}

// SeqProve replays a proof script against the named theorem using the seed
// structural kernel, strictly sequentially — the seed prover retained as
// the oracle the randomized equivalence tests and benchmarks compare the
// interned parallel pipeline against. Like ProveTheorem, it errors if the
// script fails or leaves goals open.
func SeqProve(th *logic.Theory, theorem, script string) (Result, error) {
	p, err := New(th, theorem)
	if err != nil {
		return Result{}, err
	}
	p.UseSeedKernel()
	return p.Prove(script)
}

// --- grind sub-goal memo ---------------------------------------------------

// grindMemo caches closed grind sub-goals by (sequent, exact depth): a
// repeated sub-sequent is proved once and later hits replay the recorded
// primitive-inference count, keeping step accounting identical to the
// uncached run. Only closed results are stored (open residuals depend on
// the surrounding search), and the depth must match exactly because the
// search is depth-bounded. Lookups verify full structural equality; the
// hash only selects the bucket.
type grindMemo struct {
	mu sync.Mutex
	m  map[grindMemoKey][]grindMemoEnt
}

type grindMemoKey struct {
	hash  uint64
	depth int
}

type grindMemoEnt struct {
	g    Sequent
	prim int
}

func newGrindMemo() *grindMemo {
	return &grindMemo{m: map[grindMemoKey][]grindMemoEnt{}}
}

func sequentHash(g Sequent) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, f := range g.Ante {
		h = (h ^ logic.FormulaHash(f)) * 0x100000001b3
	}
	h = (h ^ 0xabcd) * 0x100000001b3
	for _, f := range g.Cons {
		h = (h ^ logic.FormulaHash(f)) * 0x100000001b3
	}
	return h
}

func sequentEqual(a, b Sequent) bool {
	if len(a.Ante) != len(b.Ante) || len(a.Cons) != len(b.Cons) {
		return false
	}
	for i := range a.Ante {
		if !logic.FormulaEqual(a.Ante[i], b.Ante[i]) {
			return false
		}
	}
	for i := range a.Cons {
		if !logic.FormulaEqual(a.Cons[i], b.Cons[i]) {
			return false
		}
	}
	return true
}

// lookup returns the recorded primitive count for a previously closed
// identical sub-goal at the same depth.
func (mm *grindMemo) lookup(g Sequent, depth int) (int, bool) {
	key := grindMemoKey{hash: sequentHash(g), depth: depth}
	mm.mu.Lock()
	defer mm.mu.Unlock()
	for _, e := range mm.m[key] {
		if sequentEqual(e.g, g) {
			return e.prim, true
		}
	}
	return 0, false
}

func (mm *grindMemo) store(g Sequent, depth, prim int) {
	key := grindMemoKey{hash: sequentHash(g), depth: depth}
	mm.mu.Lock()
	defer mm.mu.Unlock()
	for _, e := range mm.m[key] {
		if sequentEqual(e.g, g) {
			return
		}
	}
	mm.m[key] = append(mm.m[key], grindMemoEnt{g: g, prim: prim})
}
