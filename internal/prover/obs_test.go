package prover

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/logic"
	"repro/internal/obs"
)

func TestTacticName(t *testing.T) {
	for in, want := range map[string]string{
		"(skosimp*)":       "skosimp*",
		"(grind)":          "grind",
		`(expand "link")`:  "expand",
		"(inst 1 ...)":     "inst",
		`(lemma "sp_ax1")`: "lemma",
	} {
		if got := tacticName(in); got != want {
			t.Errorf("tacticName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestInstrumentedProofReconciles runs an instrumented proof and checks
// that the per-tactic counters and trace events reconcile with the
// session's own Steps/PrimSteps accounting.
func TestInstrumentedProofReconciles(t *testing.T) {
	th := logic.NewTheory("t")
	a, b := logic.Pred{Name: "a"}, logic.Pred{Name: "b"}
	// (a ∧ b) ⇒ (b ∧ a): split then grind both branches.
	goal := logic.Implies{L: logic.Conj(a, b), R: logic.Conj(b, a)}
	p := NewGoal(th, "swap", goal)
	c := obs.NewCollector()
	ring := obs.NewRingSink(256)
	p.Instrument(c, obs.NewTracer(ring))
	if err := p.RunScript(`(flatten) (split) (grind) (grind)`); err != nil {
		t.Fatal(err)
	}
	if !p.QED() {
		t.Fatal("proof did not close")
	}

	var steps, prim int64
	for _, m := range c.Snapshot() {
		if m.Component != "prover" {
			continue
		}
		switch m.Name {
		case obs.MTacticSteps:
			steps += m.Value
		case obs.MTacticPrim:
			prim += m.Value
		}
	}
	if steps != int64(p.Steps) {
		t.Errorf("sum of tactic steps = %d, Prover.Steps = %d", steps, p.Steps)
	}
	if prim != int64(p.PrimSteps) {
		t.Errorf("sum of tactic prim = %d, Prover.PrimSteps = %d", prim, p.PrimSteps)
	}
	if got := c.Value("prover", obs.MTacticSteps, "grind"); got != 2 {
		t.Errorf("grind steps = %d, want 2", got)
	}
	if h := c.FindHistogram("prover", obs.MTacticMs, "grind"); h.Count() != 2 {
		t.Errorf("grind duration observations = %d, want 2", h.Count())
	}

	// One EvProofStep per tactic invocation, with primitive counts that
	// sum to PrimSteps.
	var evSteps int
	var evPrim int64
	for _, ev := range ring.Events() {
		if ev.Kind == obs.EvProofStep {
			evSteps++
			evPrim += ev.N
		}
	}
	if evSteps != p.Steps {
		t.Errorf("ProofStep events = %d, Steps = %d", evSteps, p.Steps)
	}
	if evPrim != int64(p.PrimSteps) {
		t.Errorf("ProofStep prim sum = %d, PrimSteps = %d", evPrim, p.PrimSteps)
	}

	var buf bytes.Buffer
	obs.WriteTacticExplain(&buf, c)
	out := buf.String()
	for _, want := range []string{"EXPLAIN ANALYZE proof", "grind", "flatten", "split", "total:"} {
		if !strings.Contains(out, want) {
			t.Errorf("tactic explain missing %q:\n%s", want, out)
		}
	}
}

// TestUninstrumentedProverUnchanged guards the disabled path: identical
// Steps/PrimSteps/Trace with and without instrumentation.
func TestUninstrumentedProverUnchanged(t *testing.T) {
	run := func(instrument bool) *Prover {
		th := logic.NewTheory("t")
		a, b := logic.Pred{Name: "a"}, logic.Pred{Name: "b"}
		p := NewGoal(th, "swap", logic.Implies{L: logic.Conj(a, b), R: logic.Conj(b, a)})
		if instrument {
			p.Instrument(obs.NewCollector(), nil)
		}
		if err := p.RunScript(`(skosimp*) (split) (grind) (grind)`); err != nil {
			t.Fatal(err)
		}
		return p
	}
	off, on := run(false), run(true)
	if !off.QED() || !on.QED() {
		t.Fatal("proofs did not close")
	}
	if off.Steps != on.Steps || off.PrimSteps != on.PrimSteps || off.AutoPrim != on.AutoPrim {
		t.Errorf("accounting differs: off %d/%d/%d, on %d/%d/%d",
			off.Steps, off.PrimSteps, off.AutoPrim, on.Steps, on.PrimSteps, on.AutoPrim)
	}
	if strings.Join(off.Trace, " ") != strings.Join(on.Trace, " ") {
		t.Errorf("traces differ:\n%v\n%v", off.Trace, on.Trace)
	}
}
