package prover

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/logic"
	"repro/internal/obs"
)

// ErrNoOpenGoal is returned by tactics invoked after the proof is complete.
var ErrNoOpenGoal = errors.New("prover: no open goal")

// ErrCancelled wraps the context error when a proof script is cut short;
// errors.Is(err, context.Canceled/DeadlineExceeded) also matches.
var ErrCancelled = errors.New("prover: cancelled")

// Prover is an interactive proof session over one theorem of a theory.
// Tactics act on the current goal (the top of the open-goal stack); a
// tactic that yields multiple subgoals pushes all of them, and the proof is
// complete (QED) when the stack empties.
//
// Step accounting follows the paper's reporting: Steps counts user-visible
// tactic invocations ("the bestPathStrong theorem takes 7 proof steps"),
// while PrimSteps counts primitive kernel inferences and AutoPrim those
// primitive inferences performed inside automated strategies (skosimp*,
// grind, assert's internal simplification), which is how E12 measures the
// paper's "two-thirds of the proof steps can be automated".
type Prover struct {
	Theory  *logic.Theory
	Theorem string

	goals []Sequent // open goals, top = current
	// Proved theorems of the session, available to Lemma alongside axioms.
	proved map[string]logic.Formula

	Steps     int
	PrimSteps int
	AutoPrim  int
	Trace     []string

	skCounter map[string]int
	started   time.Time
	Elapsed   time.Duration

	// inAuto marks that primitive steps are being driven by an automated
	// strategy, for AutoPrim accounting.
	inAuto bool

	// Kernel configuration (see kernel.go). structural selects the seed
	// string-keyed kernel; workers/sem bound concurrent grind branches;
	// memo caches closed grind sub-goals; simp memoizes assert's
	// ground-term simplification by interned formula id; nonRecN is the
	// sorted auto-expandable definition list, computed once per Grind.
	structural bool
	workers    int
	sem        chan struct{}
	memo       *grindMemo
	simp       map[uint64]logic.Formula
	nonRecN    []string

	// Observability: per-tactic step counts, primitive-inference counts,
	// and durations (component "prover", labelled by tactic name). Nil
	// unless Instrument was called.
	col    *obs.Collector
	tracer *obs.Tracer

	// ctx, when non-nil and cancellable, bounds script execution: it is
	// polled at coarse boundaries (per script command; per grind sub-goal)
	// so the kernel's inner loops stay allocation-free. Set by
	// RunScriptCtx.
	ctx context.Context
}

// cancelled reports whether the session's context has fired. The nil/
// non-cancellable fast path is a pointer check.
func (p *Prover) cancelled() bool {
	return p.ctx != nil && p.ctx.Err() != nil
}

// Instrument attaches a metrics collector and/or trace stream to the
// session. Each tactic invocation then records one MTacticSteps increment,
// the primitive inferences it performed (MTacticPrim), its duration
// (MTacticMs), and an EvProofStep trace event.
func (p *Prover) Instrument(c *obs.Collector, t *obs.Tracer) {
	p.col, p.tracer = c, t
}

// New creates a proof session for the named theorem of the theory.
func New(th *logic.Theory, theorem string) (*Prover, error) {
	goal, ok := th.TheoremByName(theorem)
	if !ok {
		return nil, fmt.Errorf("prover: theory %s has no theorem %q", th.Name, theorem)
	}
	p := &Prover{
		Theory:    th,
		Theorem:   theorem,
		goals:     []Sequent{{Cons: []logic.Formula{goal.Goal}}},
		proved:    map[string]logic.Formula{},
		skCounter: map[string]int{},
		started:   time.Now(),
	}
	return p, nil
}

// NewGoal creates a proof session for an ad-hoc goal formula.
func NewGoal(th *logic.Theory, name string, goal logic.Formula) *Prover {
	return &Prover{
		Theory:    th,
		Theorem:   name,
		goals:     []Sequent{{Cons: []logic.Formula{goal}}},
		proved:    map[string]logic.Formula{},
		skCounter: map[string]int{},
		started:   time.Now(),
	}
}

// QED reports whether all goals have been discharged.
func (p *Prover) QED() bool {
	done := len(p.goals) == 0
	if done && p.Elapsed == 0 {
		p.Elapsed = time.Since(p.started)
	}
	return done
}

// Open returns the number of open goals.
func (p *Prover) Open() int { return len(p.goals) }

// Current returns the current goal sequent.
func (p *Prover) Current() (Sequent, error) {
	if len(p.goals) == 0 {
		return Sequent{}, ErrNoOpenGoal
	}
	return p.goals[len(p.goals)-1], nil
}

// noopDone is the disabled-path return of step: one shared closure so an
// uninstrumented session performs no allocation per tactic.
var noopDone = func() {}

// step records a user-visible tactic invocation and returns a completion
// function the tactic must defer: it attributes the primitive inferences
// and wall time spent inside the tactic to its per-tactic metrics.
func (p *Prover) step(name string) func() {
	p.Steps++
	p.Trace = append(p.Trace, name)
	if p.col == nil && p.tracer == nil {
		return noopDone
	}
	tac := tacticName(name)
	p.col.Counter("prover", obs.MTacticSteps, tac).Add(1)
	prim0 := p.PrimSteps
	t0 := time.Now()
	return func() {
		d := time.Since(t0)
		prim := int64(p.PrimSteps - prim0)
		p.col.Counter("prover", obs.MTacticPrim, tac).Add(prim)
		p.col.Histogram("prover", obs.MTacticMs, tac).Observe(d)
		if p.tracer != nil {
			p.tracer.Emit(obs.Event{Kind: obs.EvProofStep, Name: tac, N: prim, DurNs: int64(d)})
		}
	}
}

// tacticName extracts the bare tactic name from a trace entry:
// `(skosimp*)` -> `skosimp*`, `(expand "link") -> `expand`.
func tacticName(step string) string {
	s := strings.Trim(step, "()")
	if i := strings.IndexByte(s, ' '); i >= 0 {
		s = s[:i]
	}
	return s
}

func (p *Prover) prim() {
	p.PrimSteps++
	if p.inAuto {
		p.AutoPrim++
	}
}

// pop removes the current goal; push adds subgoals.
func (p *Prover) pop() Sequent {
	g := p.goals[len(p.goals)-1]
	p.goals = p.goals[:len(p.goals)-1]
	return g
}

func (p *Prover) push(gs ...Sequent) {
	p.goals = append(p.goals, gs...)
}

// pushSubgoals pushes subgoals so that the FIRST subgoal becomes the
// current goal (the stack top), matching the PVS convention that proof
// branches are attacked in order.
func (p *Prover) pushSubgoals(gs ...Sequent) {
	for i := len(gs) - 1; i >= 0; i-- {
		p.goals = append(p.goals, gs[i])
	}
}

// freshSkolem returns a fresh skolem constant (a nullary application) for
// the variable name base, PVS-style: S becomes S!1, then S!2, ...
func (p *Prover) freshSkolem(base string, avoid map[string]bool) logic.Term {
	for {
		p.skCounter[base]++
		name := base + "!" + strconv.Itoa(p.skCounter[base])
		if !avoid[name] {
			return logic.App{Fn: name}
		}
	}
}

// Sk returns the term for the i-th skolem constant generated from variable
// base (1-based), for use in Inst calls from proof scripts.
func Sk(base string, i int) logic.Term {
	return logic.App{Fn: base + "!" + strconv.Itoa(i)}
}

// --- primitive simplification -------------------------------------------

// flattenOnce applies one round of non-branching sequent rules to g.
// It returns the resulting goals (nil if the goal closed) and whether
// anything changed.
func (p *Prover) flattenOnce(g Sequent) (out *Sequent, closed, changed bool) {
	// Axiom rule: some formula on both sides, or TRUE on the right /
	// FALSE on the left.
	for _, f := range g.Cons {
		if t, ok := f.(logic.TruthVal); ok && t.B {
			p.prim()
			return nil, true, true
		}
		if containsFormula(g.Ante, f) {
			p.prim()
			return nil, true, true
		}
	}
	for _, f := range g.Ante {
		if t, ok := f.(logic.TruthVal); ok && !t.B {
			p.prim()
			return nil, true, true
		}
	}

	for i, f := range g.Ante {
		switch x := f.(type) {
		case logic.And:
			ng := g.Clone()
			ng.Ante = append(ng.Ante[:i:i], append(append([]logic.Formula{}, x.Fs...), g.Ante[i+1:]...)...)
			p.prim()
			return &ng, false, true
		case logic.Not:
			ng := g.Clone()
			_ = ng.Remove(-(i + 1))
			ng.Cons = append(ng.Cons, x.F)
			p.prim()
			return &ng, false, true
		case logic.TruthVal:
			if x.B {
				ng := g.Clone()
				_ = ng.Remove(-(i + 1))
				p.prim()
				return &ng, false, true
			}
		case logic.Iff:
			ng := g.Clone()
			ng.Ante[i] = logic.Implies{L: x.L, R: x.R}
			ng.Ante = append(ng.Ante, logic.Implies{L: x.R, R: x.L})
			p.prim()
			return &ng, false, true
		}
	}
	for i, f := range g.Cons {
		switch x := f.(type) {
		case logic.Or:
			ng := g.Clone()
			ng.Cons = append(ng.Cons[:i:i], append(append([]logic.Formula{}, x.Fs...), g.Cons[i+1:]...)...)
			p.prim()
			return &ng, false, true
		case logic.Implies:
			ng := g.Clone()
			ng.Cons[i] = x.R
			ng.Ante = append(ng.Ante, x.L)
			p.prim()
			return &ng, false, true
		case logic.Not:
			ng := g.Clone()
			_ = ng.Remove(i + 1)
			ng.Ante = append(ng.Ante, x.F)
			p.prim()
			return &ng, false, true
		case logic.TruthVal:
			if !x.B {
				ng := g.Clone()
				_ = ng.Remove(i + 1)
				p.prim()
				return &ng, false, true
			}
		}
	}
	return &g, false, false
}

// flattenFully applies flattenOnce to fixpoint.
func (p *Prover) flattenFully(g Sequent) (out *Sequent, closed bool) {
	cur := g
	for {
		ng, cl, ch := p.flattenOnce(cur)
		if cl {
			return nil, true
		}
		if !ch {
			return ng, false
		}
		cur = *ng
	}
}

// skolemizeOnce replaces one consequent FORALL or antecedent EXISTS with a
// skolemized body. Returns changed=false if there is none.
func (p *Prover) skolemizeOnce(g Sequent) (Sequent, bool) {
	avoid := g.FreeVarSet()
	for i, f := range g.Ante {
		if ex, ok := f.(logic.Exists); ok {
			s := logic.Subst{}
			for _, v := range ex.Vars {
				s[v.Name] = p.freshSkolem(v.Name, avoid)
			}
			ng := g.Clone()
			ng.Ante[i] = s.Apply(ex.Body)
			p.prim()
			return ng, true
		}
	}
	for i, f := range g.Cons {
		if fa, ok := f.(logic.Forall); ok {
			s := logic.Subst{}
			for _, v := range fa.Vars {
				s[v.Name] = p.freshSkolem(v.Name, avoid)
			}
			ng := g.Clone()
			ng.Cons[i] = s.Apply(fa.Body)
			p.prim()
			return ng, true
		}
	}
	return g, false
}

// --- user tactics ---------------------------------------------------------

// Flatten applies all non-branching propositional rules (PVS `flatten`).
func (p *Prover) Flatten() error {
	if len(p.goals) == 0 {
		return ErrNoOpenGoal
	}
	defer p.step("(flatten)")()
	g := p.pop()
	ng, closed := p.flattenFully(g)
	if !closed {
		p.push(*ng)
	}
	return nil
}

// Skosimp repeatedly skolemizes and flattens until neither applies
// (PVS `skosimp*`).
func (p *Prover) Skosimp() error {
	if len(p.goals) == 0 {
		return ErrNoOpenGoal
	}
	defer p.step("(skosimp*)")()
	wasAuto := p.inAuto
	p.inAuto = true
	defer func() { p.inAuto = wasAuto }()

	g := p.pop()
	cur := &g
	for {
		ng, closed := p.flattenFully(*cur)
		if closed {
			return nil
		}
		cur = ng
		sk, changed := p.skolemizeOnce(*cur)
		if !changed {
			break
		}
		cur = &sk
	}
	p.push(*cur)
	return nil
}

// Split performs one branching rule on the current goal (PVS `split`):
// a conjunction in the consequent, a disjunction or implication in the
// antecedent, or an IFF in the consequent. The leftmost applicable formula
// is chosen.
func (p *Prover) Split() error {
	if len(p.goals) == 0 {
		return ErrNoOpenGoal
	}
	defer p.step("(split)")()
	g := p.pop()

	for i, f := range g.Cons {
		switch x := f.(type) {
		case logic.And:
			subs := make([]Sequent, len(x.Fs))
			for j, c := range x.Fs {
				ng := g.Clone()
				ng.Cons[i] = c
				subs[j] = ng
			}
			p.prim()
			p.pushSubgoals(subs...)
			return nil
		case logic.Iff:
			g1 := g.Clone()
			g1.Cons[i] = logic.Implies{L: x.L, R: x.R}
			g2 := g.Clone()
			g2.Cons[i] = logic.Implies{L: x.R, R: x.L}
			p.prim()
			p.pushSubgoals(g1, g2)
			return nil
		}
	}
	for i, f := range g.Ante {
		switch x := f.(type) {
		case logic.Or:
			subs := make([]Sequent, len(x.Fs))
			for j, c := range x.Fs {
				ng := g.Clone()
				ng.Ante[i] = c
				subs[j] = ng
			}
			p.prim()
			p.pushSubgoals(subs...)
			return nil
		case logic.Implies:
			g1 := g.Clone()
			_ = g1.Remove(-(i + 1))
			g1.Cons = append(g1.Cons, x.L)
			g2 := g.Clone()
			g2.Ante[i] = x.R
			p.prim()
			p.pushSubgoals(g1, g2)
			return nil
		}
	}
	p.push(g)
	return fmt.Errorf("prover: split: no branching formula in goal")
}

// Expand unfolds every occurrence of the named inductive definition in the
// current goal (PVS `expand "name"`). Unfolding uses the fixpoint
// equivalence P(x̄) ⇔ Body(x̄), which holds of the least fixed point, so it
// is sound in any polarity.
func (p *Prover) Expand(name string) error {
	if len(p.goals) == 0 {
		return ErrNoOpenGoal
	}
	def, ok := p.Theory.Lookup(name)
	if !ok {
		return fmt.Errorf("prover: expand: no inductive definition %q", name)
	}
	defer p.step(fmt.Sprintf("(expand %q)", name))()
	g := p.pop()
	ng := g.Clone()
	count := 0
	var expandErr error
	rewrite := func(f logic.Formula) logic.Formula {
		return replacePred(f, name, func(pr logic.Pred) logic.Formula {
			body, err := def.Instantiate(pr.Args)
			if err != nil {
				expandErr = err
				return pr
			}
			count++
			p.prim()
			return body
		})
	}
	for i, f := range ng.Ante {
		ng.Ante[i] = rewrite(f)
	}
	for i, f := range ng.Cons {
		ng.Cons[i] = rewrite(f)
	}
	if expandErr != nil {
		p.push(g)
		return expandErr
	}
	if count == 0 {
		p.push(g)
		return fmt.Errorf("prover: expand: no occurrence of %q in goal", name)
	}
	p.push(ng)
	return nil
}

// replacePred rewrites every occurrence of predicate name in f via fn,
// without descending into the replacement (so recursive definitions unfold
// exactly one level).
func replacePred(f logic.Formula, name string, fn func(logic.Pred) logic.Formula) logic.Formula {
	switch x := f.(type) {
	case logic.Pred:
		if x.Name == name {
			return fn(x)
		}
		return x
	case logic.Not:
		return logic.Not{F: replacePred(x.F, name, fn)}
	case logic.And:
		fs := make([]logic.Formula, len(x.Fs))
		for i, g := range x.Fs {
			fs[i] = replacePred(g, name, fn)
		}
		return logic.And{Fs: fs}
	case logic.Or:
		fs := make([]logic.Formula, len(x.Fs))
		for i, g := range x.Fs {
			fs[i] = replacePred(g, name, fn)
		}
		return logic.Or{Fs: fs}
	case logic.Implies:
		return logic.Implies{L: replacePred(x.L, name, fn), R: replacePred(x.R, name, fn)}
	case logic.Iff:
		return logic.Iff{L: replacePred(x.L, name, fn), R: replacePred(x.R, name, fn)}
	case logic.Forall:
		return logic.Forall{Vars: x.Vars, Body: replacePred(x.Body, name, fn)}
	case logic.Exists:
		return logic.Exists{Vars: x.Vars, Body: replacePred(x.Body, name, fn)}
	default:
		return f
	}
}

// Inst instantiates the quantifier at the given PVS-style formula index
// with the given terms: a FORALL in the antecedent or an EXISTS in the
// consequent (PVS `inst`). The quantified formula is replaced by its
// instance.
func (p *Prover) Inst(idx int, terms ...logic.Term) error {
	if len(p.goals) == 0 {
		return ErrNoOpenGoal
	}
	g := p.goals[len(p.goals)-1]
	f, err := g.Formula(idx)
	if err != nil {
		return err
	}
	var vars []logic.Var
	var body logic.Formula
	switch x := f.(type) {
	case logic.Forall:
		if idx > 0 {
			return fmt.Errorf("prover: inst: formula %d is a consequent FORALL; use skosimp", idx)
		}
		vars, body = x.Vars, x.Body
	case logic.Exists:
		if idx < 0 {
			return fmt.Errorf("prover: inst: formula %d is an antecedent EXISTS; use skosimp", idx)
		}
		vars, body = x.Vars, x.Body
	default:
		return fmt.Errorf("prover: inst: formula %d is not a quantifier", idx)
	}
	if len(terms) > len(vars) {
		return fmt.Errorf("prover: inst: %d terms for %d bound variables", len(terms), len(vars))
	}
	s := logic.Subst{}
	for i, t := range terms {
		s[vars[i].Name] = t
	}
	inst := s.Apply(body)
	// Partial instantiation keeps the remaining binder.
	if len(terms) < len(vars) {
		rest := vars[len(terms):]
		if idx < 0 {
			inst = logic.Forall{Vars: rest, Body: inst}
		} else {
			inst = logic.Exists{Vars: rest, Body: inst}
		}
	}
	defer p.step(fmt.Sprintf("(inst %d ...)", idx))()
	p.prim()
	ng := g.Clone()
	_ = ng.Replace(idx, inst)
	p.goals[len(p.goals)-1] = ng
	return nil
}

// Case splits the current goal on an arbitrary formula (PVS `case`):
// the first subgoal assumes it, the second must prove it.
func (p *Prover) Case(f logic.Formula) error {
	if len(p.goals) == 0 {
		return ErrNoOpenGoal
	}
	defer p.step("(case ...)")()
	g := p.pop()
	g1 := g.Clone()
	g1.Ante = append(g1.Ante, f)
	g2 := g.Clone()
	g2.Cons = append(g2.Cons, f)
	p.prim()
	p.pushSubgoals(g1, g2)
	return nil
}

// Lemma brings a named axiom or previously proved theorem of the theory
// into the antecedent of the current goal (PVS `lemma`).
func (p *Prover) Lemma(name string) error {
	if len(p.goals) == 0 {
		return ErrNoOpenGoal
	}
	var f logic.Formula
	for _, ax := range p.Theory.Axioms {
		if ax.Name == name {
			f = ax.Goal
			break
		}
	}
	if f == nil {
		if g, ok := p.proved[name]; ok {
			f = g
		}
	}
	if f == nil {
		// A theorem of the theory may be cited if it was proved in another
		// session; the caller vouches for it via MarkProved.
		return fmt.Errorf("prover: lemma: no axiom or proved theorem %q", name)
	}
	defer p.step(fmt.Sprintf("(lemma %q)", name))()
	p.prim()
	g := p.goals[len(p.goals)-1].Clone()
	g.Ante = append(g.Ante, f)
	p.goals[len(p.goals)-1] = g
	return nil
}

// MarkProved registers an externally proved theorem for use by Lemma.
func (p *Prover) MarkProved(name string, goal logic.Formula) {
	p.proved[name] = goal
}

// Hide removes a formula from the current goal (PVS `hide`). Hiding only
// weakens the sequent, so it is always sound.
func (p *Prover) Hide(idx int) error {
	if len(p.goals) == 0 {
		return ErrNoOpenGoal
	}
	defer p.step(fmt.Sprintf("(hide %d)", idx))()
	g := p.goals[len(p.goals)-1].Clone()
	if err := g.Remove(idx); err != nil {
		return err
	}
	p.prim()
	p.goals[len(p.goals)-1] = g
	return nil
}

// Postpone rotates the current goal to the bottom of the stack.
func (p *Prover) Postpone() error {
	if len(p.goals) < 2 {
		return nil
	}
	g := p.pop()
	p.goals = append([]Sequent{g}, p.goals...)
	return nil
}
