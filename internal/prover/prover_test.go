package prover

import (
	"strings"
	"testing"

	"repro/internal/logic"
)

// pathVectorTheory builds, by hand, the PVS-style theory of §3.1 of the
// paper: the inductive path definition translated from NDlog rules r1-r2,
// the min-aggregate axiomatization of bestPathCost (r3), bestPath (r4),
// and the bestPathStrong route-optimality theorem. The translator in
// internal/translate generates an equivalent theory from NDlog source;
// this fixture keeps the prover tests independent of it.
func pathVectorTheory() *logic.Theory {
	th := logic.NewTheory("pathVector")

	S := logic.TV("S", logic.SortNode)
	D := logic.TV("D", logic.SortNode)
	P := logic.TV("P", logic.SortPath)
	C := logic.TV("C", logic.SortMetric)

	// path(S,D,P,C): INDUCTIVE bool =
	//   (link(S,D,C) AND P=f_init(S,D)) OR
	//   (EXISTS C1,C2,P2,Z: link(S,Z,C1) AND path(Z,D,P2,C2) AND C=C1+C2
	//    AND P=f_concatPath(S,P2) AND f_inPath(P2,S)=FALSE)
	base := logic.Conj(
		logic.Pred{Name: "link", Args: []logic.Term{S, D, C}},
		logic.Eq{L: P, R: logic.Fn("f_init", S, D)},
	)
	C1 := logic.TV("C1", logic.SortMetric)
	C2 := logic.TV("C2", logic.SortMetric)
	P2 := logic.TV("P2", logic.SortPath)
	Z := logic.TV("Z", logic.SortNode)
	rec := logic.Exists{
		Vars: []logic.Var{C1, C2, P2, Z},
		Body: logic.Conj(
			logic.Pred{Name: "link", Args: []logic.Term{S, Z, C1}},
			logic.Pred{Name: "path", Args: []logic.Term{Z, D, P2, C2}},
			logic.Eq{L: C, R: logic.Fn("+", C1, C2)},
			logic.Eq{L: P, R: logic.Fn("f_concatPath", S, P2)},
			logic.Eq{L: logic.Fn("f_inPath", P2, S), R: logic.BoolT(false)},
		),
	}
	th.AddInductive(&logic.Inductive{
		Name:   "path",
		Params: []logic.Var{S, D, P, C},
		Body:   logic.Disj(base, rec),
	})

	// bestPathCost(S,D,C): the min<C> aggregate of rule r3, axiomatized as
	// "some path has cost C, and no path costs less".
	P0 := logic.TV("P0", logic.SortPath)
	th.AddInductive(&logic.Inductive{
		Name:   "bestPathCost",
		Params: []logic.Var{S, D, C},
		Body: logic.Conj(
			logic.Exists{Vars: []logic.Var{P0}, Body: logic.Pred{Name: "path", Args: []logic.Term{S, D, P0, C}}},
			logic.Forall{Vars: []logic.Var{P2, C2}, Body: logic.Implies{
				L: logic.Pred{Name: "path", Args: []logic.Term{S, D, P2, C2}},
				R: logic.Cmp{Op: "<=", L: C, R: C2},
			}},
		),
	})

	// bestPath(S,D,P,C) from rule r4.
	th.AddInductive(&logic.Inductive{
		Name:   "bestPath",
		Params: []logic.Var{S, D, P, C},
		Body: logic.Conj(
			logic.Pred{Name: "bestPathCost", Args: []logic.Term{S, D, C}},
			logic.Pred{Name: "path", Args: []logic.Term{S, D, P, C}},
		),
	})

	// bestPathStrong: THEOREM (verbatim from §3.1).
	th.AddTheorem("bestPathStrong", logic.Forall{
		Vars: []logic.Var{S, D, C, P},
		Body: logic.Implies{
			L: logic.Pred{Name: "bestPath", Args: []logic.Term{S, D, P, C}},
			R: logic.Not{F: logic.Exists{
				Vars: []logic.Var{C2, P2},
				Body: logic.Conj(
					logic.Pred{Name: "path", Args: []logic.Term{S, D, P2, C2}},
					logic.Cmp{Op: "<", L: C2, R: C},
				),
			}},
		},
	})

	// bestPathIsPath: a best path is a path (sanity theorem).
	th.AddTheorem("bestPathIsPath", logic.Forall{
		Vars: []logic.Var{S, D, P, C},
		Body: logic.Implies{
			L: logic.Pred{Name: "bestPath", Args: []logic.Term{S, D, P, C}},
			R: logic.Pred{Name: "path", Args: []logic.Term{S, D, P, C}},
		},
	})

	// linkCostPositive: AXIOM link(S,D,C) => C >= 1, used by the
	// rule-induction theorem pathCostPositive.
	th.AddAxiom("linkCostPositive", logic.Forall{
		Vars: []logic.Var{S, D, C},
		Body: logic.Implies{
			L: logic.Pred{Name: "link", Args: []logic.Term{S, D, C}},
			R: logic.Cmp{Op: ">=", L: C, R: logic.IntT(1)},
		},
	})
	th.AddTheorem("pathCostPositive", logic.Forall{
		Vars: []logic.Var{S, D, P, C},
		Body: logic.Implies{
			L: logic.Pred{Name: "path", Args: []logic.Term{S, D, P, C}},
			R: logic.Cmp{Op: ">=", L: C, R: logic.IntT(1)},
		},
	})

	return th
}

// The proof of the paper's flagship theorem, in exactly the seven steps
// reported in §3.1: "The bestPathStrong theorem takes 7 proof steps."
const bestPathStrongScript = `
(skosimp*)
(expand "bestPath")
(flatten)
(expand "bestPathCost")
(flatten)
(inst -2 P2!1 C2!1)
(assert)
`

func TestBestPathStrongSevenSteps(t *testing.T) {
	th := pathVectorTheory()
	if err := th.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := ProveTheorem(th, "bestPathStrong", bestPathStrongScript)
	if err != nil {
		t.Fatal(err)
	}
	if !res.QED {
		t.Fatal("bestPathStrong not proved")
	}
	if res.Steps != 7 {
		t.Errorf("bestPathStrong took %d steps, paper reports 7 (trace: %v)", res.Steps, res.Trace)
	}
}

func TestBestPathStrongByGrind(t *testing.T) {
	// The fully automated strategy should also close the theorem.
	th := pathVectorTheory()
	p, err := New(th, "bestPathStrong")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.RunScript(`(skosimp*) (expand "bestPath") (expand "bestPathCost") (grind)`); err != nil {
		t.Fatal(err)
	}
	if !p.QED() {
		g, _ := p.Current()
		t.Fatalf("grind left %d goals open:\n%s", p.Open(), g.String())
	}
}

func TestBestPathIsPath(t *testing.T) {
	th := pathVectorTheory()
	res, err := ProveTheorem(th, "bestPathIsPath", `(skosimp*) (expand "bestPath") (assert)`)
	if err != nil {
		t.Fatal(err)
	}
	if !res.QED {
		t.Fatal("not proved")
	}
}

func TestPathCostPositiveByInduction(t *testing.T) {
	// Rule induction over the path definition (the technique §3.2 uses to
	// generalize to arbitrary networks), with the link-cost axiom.
	th := pathVectorTheory()
	p, err := New(th, "pathCostPositive")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Induct("path"); err != nil {
		t.Fatal(err)
	}
	if p.Open() != 2 {
		t.Fatalf("induct produced %d goals, want 2 (one per clause)", p.Open())
	}
	// Base case: link(S,D,C) ∧ P = f_init(S,D) ⇒ C ≥ 1.
	if err := p.RunScript(`(skosimp*) (lemma "linkCostPositive") (inst -3 S!1 D!1 C!1) (assert)`); err != nil {
		t.Fatalf("base case: %v", err)
	}
	// Inductive case: link(S,Z,C1) ∧ (path(...) ∧ C2 ≥ 1) ∧ C = C1+C2 ⇒ C ≥ 1.
	if err := p.RunScript(`(skosimp*) (lemma "linkCostPositive") (inst -7 S!2 Z!1 C1!1) (assert)`); err != nil {
		t.Fatalf("inductive case: %v", err)
	}
	if !p.QED() {
		g, _ := p.Current()
		t.Fatalf("%d goals open:\n%s", p.Open(), g.String())
	}
}

func TestUnprovableGoalStaysOpen(t *testing.T) {
	// Soundness check: a false statement must not be provable by the
	// automated strategy.
	th := pathVectorTheory()
	p := NewGoal(th, "falseClaim", logic.Forall{
		Vars: []logic.Var{logic.TV("C", logic.SortMetric)},
		Body: logic.Cmp{Op: "<", L: logic.V("C"), R: logic.IntT(0)},
	})
	if err := p.RunScript(`(grind)`); err != nil {
		t.Fatal(err)
	}
	if p.QED() {
		t.Fatal("prover proved a false statement")
	}
}

func TestAssertClosesArithmeticContradiction(t *testing.T) {
	th := logic.NewTheory("t")
	// C2 < C, C <= C2 ⊢ FALSE.
	p := NewGoal(th, "contr", logic.Implies{
		L: logic.Conj(
			logic.Cmp{Op: "<", L: logic.V("C2"), R: logic.V("C")},
			logic.Cmp{Op: "<=", L: logic.V("C"), R: logic.V("C2")},
		),
		R: logic.False,
	})
	if err := p.RunScript(`(skosimp*) (assert)`); err != nil {
		t.Fatal(err)
	}
	if !p.QED() {
		t.Fatal("assert failed to close arithmetic contradiction")
	}
}

func TestAssertChainedInequalities(t *testing.T) {
	th := logic.NewTheory("t")
	// A ≤ B ∧ B ≤ C ∧ C ≤ A-1 is infeasible.
	p := NewGoal(th, "chain", logic.Implies{
		L: logic.Conj(
			logic.Cmp{Op: "<=", L: logic.V("A"), R: logic.V("B")},
			logic.Cmp{Op: "<=", L: logic.V("B"), R: logic.V("C")},
			logic.Cmp{Op: "<=", L: logic.V("C"), R: logic.Fn("-", logic.V("A"), logic.IntT(1))},
		),
		R: logic.False,
	})
	if err := p.RunScript(`(skosimp*) (assert)`); err != nil {
		t.Fatal(err)
	}
	if !p.QED() {
		t.Fatal("assert failed on chained inequalities")
	}
}

func TestAssertStrictIntegerTightening(t *testing.T) {
	th := logic.NewTheory("t")
	// Over the integers, X < Y ∧ Y < X+2 forces Y = X+1, so Y ≤ X+1.
	p := NewGoal(th, "tight", logic.Implies{
		L: logic.Conj(
			logic.Cmp{Op: "<", L: logic.V("X"), R: logic.V("Y")},
			logic.Cmp{Op: "<", L: logic.V("Y"), R: logic.Fn("+", logic.V("X"), logic.IntT(2))},
		),
		R: logic.Cmp{Op: "<=", L: logic.V("Y"), R: logic.Fn("+", logic.V("X"), logic.IntT(1))},
	})
	if err := p.RunScript(`(skosimp*) (assert)`); err != nil {
		t.Fatal(err)
	}
	if !p.QED() {
		t.Fatal("integer tightening not applied")
	}
}

func TestAssertCongruenceClosure(t *testing.T) {
	th := logic.NewTheory("t")
	// a = b ⊢ f(a) = f(b).
	a := logic.App{Fn: "a"}
	b := logic.App{Fn: "b"}
	p := NewGoal(th, "cong", logic.Implies{
		L: logic.Eq{L: a, R: b},
		R: logic.Eq{L: logic.Fn("g", a), R: logic.Fn("g", b)},
	})
	if err := p.RunScript(`(flatten) (assert)`); err != nil {
		t.Fatal(err)
	}
	if !p.QED() {
		t.Fatal("congruence closure failed")
	}
}

func TestAssertGroundEvaluation(t *testing.T) {
	th := logic.NewTheory("t")
	// ⊢ f_inPath(f_init(a,b), a) = TRUE, all ground.
	p := NewGoal(th, "ground", logic.Eq{
		L: logic.Fn("f_inPath", logic.Fn("f_init", logic.AddrT("a"), logic.AddrT("b")), logic.AddrT("a")),
		R: logic.BoolT(true),
	})
	if err := p.RunScript(`(assert)`); err != nil {
		t.Fatal(err)
	}
	if !p.QED() {
		t.Fatal("ground evaluation failed")
	}
}

func TestSplitAndFlatten(t *testing.T) {
	th := logic.NewTheory("t")
	a := logic.Pred{Name: "a"}
	b := logic.Pred{Name: "b"}
	// a ∧ b ⊢ b ∧ a.
	p := NewGoal(th, "comm", logic.Implies{L: logic.Conj(a, b), R: logic.Conj(b, a)})
	if err := p.RunScript(`(flatten) (split)`); err != nil {
		t.Fatal(err)
	}
	if p.Open() != 2 {
		t.Fatalf("split produced %d goals, want 2", p.Open())
	}
	// Both subgoals close by the axiom rule inside flatten.
	if err := p.RunScript(`(flatten) (flatten)`); err != nil {
		t.Fatal(err)
	}
	if !p.QED() {
		t.Fatal("propositional goal not closed")
	}
}

func TestCaseTactic(t *testing.T) {
	th := logic.NewTheory("t")
	a := logic.Pred{Name: "a"}
	// ⊢ a ∨ ¬a by case split.
	p := NewGoal(th, "excluded", logic.Disj(a, logic.Not{F: a}))
	if err := p.Case(a); err != nil {
		t.Fatal(err)
	}
	if err := p.RunScript(`(flatten) (flatten)`); err != nil {
		t.Fatal(err)
	}
	if !p.QED() {
		t.Fatal("case split proof failed")
	}
}

func TestHideIsSoundButWeakens(t *testing.T) {
	th := logic.NewTheory("t")
	a := logic.Pred{Name: "a"}
	p := NewGoal(th, "weak", logic.Implies{L: a, R: a})
	if err := p.RunScript(`(flatten)`); err != nil {
		t.Fatal(err)
	}
	if !p.QED() {
		t.Fatal("identity implication should close on flatten")
	}

	p2 := NewGoal(th, "weak2", logic.Implies{L: a, R: a})
	// Hiding before flatten: remove the consequent, goal becomes unprovable.
	if err := p2.Hide(1); err != nil {
		t.Fatal(err)
	}
	if err := p2.RunScript(`(flatten) (assert) (grind)`); err != nil {
		t.Fatal(err)
	}
	if p2.QED() {
		t.Fatal("proved a goal with no consequent")
	}
}

func TestInstErrors(t *testing.T) {
	th := pathVectorTheory()
	p, err := New(th, "bestPathStrong")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Inst(1, logic.IntT(1)); err == nil {
		t.Error("inst of a consequent FORALL accepted (should require skosimp)")
	}
	if err := p.Inst(5); err == nil {
		t.Error("inst of nonexistent index accepted")
	}
}

func TestExpandErrors(t *testing.T) {
	th := pathVectorTheory()
	p, err := New(th, "bestPathStrong")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Expand("nonesuch"); err == nil {
		t.Error("expand of unknown definition accepted")
	}
	p2 := NewGoal(th, "noOcc", logic.True)
	if err := p2.Expand("path"); err == nil {
		t.Error("expand with no occurrence accepted")
	}
}

func TestLemmaUnknown(t *testing.T) {
	th := pathVectorTheory()
	p, err := New(th, "bestPathStrong")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Lemma("nonesuch"); err == nil {
		t.Error("unknown lemma accepted")
	}
}

func TestScriptParsing(t *testing.T) {
	cmds, err := parseScript(`(skosimp*) ; a comment
		(expand "bestPath")
		(inst -2 P2!1 f_init(a,b) 42)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmds) != 3 {
		t.Fatalf("parsed %d commands, want 3", len(cmds))
	}
	if cmds[1].name != "expand" || cmds[1].args[0] != `"bestPath"` {
		t.Errorf("expand parsed wrong: %+v", cmds[1])
	}
	if cmds[2].args[2] != "f_init(a,b)" || cmds[2].args[3] != "42" {
		t.Errorf("inst args parsed wrong: %+v", cmds[2])
	}
}

func TestScriptErrors(t *testing.T) {
	for _, bad := range []string{"(", "(inst)", "(expand)", "(bogus)", `(unterminated "`} {
		th := pathVectorTheory()
		p, err := New(th, "bestPathStrong")
		if err != nil {
			t.Fatal(err)
		}
		if err := p.RunScript(bad); err == nil {
			t.Errorf("script %q accepted", bad)
		}
	}
}

func TestParseTerm(t *testing.T) {
	tests := []struct {
		src  string
		want logic.Term
	}{
		{"42", logic.IntT(42)},
		{"-7", logic.IntT(-7)},
		{"'hi'", logic.StrT("hi")},
		{"X", logic.V("X")},
		{"C2!1", logic.App{Fn: "C2!1"}},
		{"true", logic.BoolT(true)},
		{"f(1,X)", logic.App{Fn: "f", Args: []logic.Term{logic.IntT(1), logic.V("X")}}},
		{"f(g(1),2)", logic.App{Fn: "f", Args: []logic.Term{logic.Fn("g", logic.IntT(1)), logic.IntT(2)}}},
	}
	for _, tc := range tests {
		got, err := ParseTerm(tc.src)
		if err != nil {
			t.Errorf("ParseTerm(%q): %v", tc.src, err)
			continue
		}
		if !logic.TermEqual(got, tc.want) {
			t.Errorf("ParseTerm(%q) = %v, want %v", tc.src, got, tc.want)
		}
	}
	if _, err := ParseTerm(""); err == nil {
		t.Error("empty term accepted")
	}
}

func TestStepAccounting(t *testing.T) {
	th := pathVectorTheory()
	res, err := ProveTheorem(th, "bestPathStrong", bestPathStrongScript)
	if err != nil {
		t.Fatal(err)
	}
	if res.PrimSteps < res.Steps {
		t.Errorf("PrimSteps %d < Steps %d", res.PrimSteps, res.Steps)
	}
	if res.AutoPrim == 0 {
		t.Error("skosimp*/assert recorded no automated primitives")
	}
	if r := res.AutomationRatio(); r <= 0 || r > 1 {
		t.Errorf("automation ratio %v out of range", r)
	}
	if res.Elapsed <= 0 {
		t.Error("elapsed time not recorded")
	}
}

func TestSequentIndexing(t *testing.T) {
	s := Sequent{
		Ante: []logic.Formula{logic.Pred{Name: "a"}, logic.Pred{Name: "b"}},
		Cons: []logic.Formula{logic.Pred{Name: "c"}},
	}
	f, err := s.Formula(-2)
	if err != nil || f.(logic.Pred).Name != "b" {
		t.Errorf("Formula(-2) = %v, %v", f, err)
	}
	f, err = s.Formula(1)
	if err != nil || f.(logic.Pred).Name != "c" {
		t.Errorf("Formula(1) = %v, %v", f, err)
	}
	if _, err := s.Formula(0); err == nil {
		t.Error("Formula(0) accepted")
	}
	if _, err := s.Formula(7); err == nil {
		t.Error("out-of-range index accepted")
	}
	str := s.String()
	if !strings.Contains(str, "|-------") {
		t.Errorf("sequent rendering missing turnstile: %q", str)
	}
}

func TestProverOnClosedSession(t *testing.T) {
	th := logic.NewTheory("t")
	p := NewGoal(th, "triv", logic.True)
	if err := p.Flatten(); err != nil {
		t.Fatal(err)
	}
	if !p.QED() {
		t.Fatal("TRUE not proved")
	}
	if err := p.Flatten(); err != ErrNoOpenGoal {
		t.Errorf("tactic after QED returned %v, want ErrNoOpenGoal", err)
	}
}

func TestNewUnknownTheorem(t *testing.T) {
	th := logic.NewTheory("t")
	if _, err := New(th, "nope"); err == nil {
		t.Error("unknown theorem accepted")
	}
}

func TestInductRejectsMalformedGoals(t *testing.T) {
	th := pathVectorTheory()
	// Goal not universally quantified.
	p := NewGoal(th, "bad", logic.Pred{Name: "path", Args: []logic.Term{logic.V("S"), logic.V("D"), logic.V("P"), logic.V("C")}})
	if err := p.Induct("path"); err == nil {
		t.Error("induct accepted non-quantified goal")
	}
	// Unknown predicate.
	p2 := NewGoal(th, "bad2", logic.Forall{Vars: []logic.Var{logic.V("X")}, Body: logic.Implies{L: logic.Pred{Name: "zzz", Args: []logic.Term{logic.V("X")}}, R: logic.True}})
	if err := p2.Induct("zzz"); err == nil {
		t.Error("induct accepted unknown predicate")
	}
	// Arguments not distinct variables.
	p3 := NewGoal(th, "bad3", logic.Forall{
		Vars: []logic.Var{logic.V("S"), logic.V("D"), logic.V("C")},
		Body: logic.Implies{
			L: logic.Pred{Name: "path", Args: []logic.Term{logic.V("S"), logic.V("D"), logic.V("S"), logic.V("C")}},
			R: logic.True,
		},
	})
	if err := p3.Induct("path"); err == nil {
		t.Error("induct accepted repeated argument variable")
	}
}

func TestGrindAutomationOnPropositional(t *testing.T) {
	th := logic.NewTheory("t")
	a, b, c := logic.Pred{Name: "a"}, logic.Pred{Name: "b"}, logic.Pred{Name: "c"}
	// ((a ⇒ b) ∧ (b ⇒ c) ∧ a) ⇒ c.
	p := NewGoal(th, "chain", logic.Implies{
		L: logic.Conj(logic.Implies{L: a, R: b}, logic.Implies{L: b, R: c}, a),
		R: c,
	})
	if err := p.Grind(); err != nil {
		t.Fatal(err)
	}
	if !p.QED() {
		t.Fatal("grind failed on propositional chain")
	}
}

func TestSkolemNamesAreFresh(t *testing.T) {
	th := logic.NewTheory("t")
	// ∃x p(x) ∧ ∃x q(x) in the antecedent must produce distinct skolems.
	p := NewGoal(th, "fresh", logic.Implies{
		L: logic.Conj(
			logic.Exists{Vars: []logic.Var{logic.V("X")}, Body: logic.Pred{Name: "p", Args: []logic.Term{logic.V("X")}}},
			logic.Exists{Vars: []logic.Var{logic.V("X")}, Body: logic.Pred{Name: "q", Args: []logic.Term{logic.V("X")}}},
		),
		R: logic.False,
	})
	if err := p.Skosimp(); err != nil {
		t.Fatal(err)
	}
	g, err := p.Current()
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, f := range g.Ante {
		if pr, ok := f.(logic.Pred); ok {
			names = append(names, pr.Args[0].String())
		}
	}
	if len(names) != 2 || names[0] == names[1] {
		t.Errorf("skolem constants not fresh: %v", names)
	}
}
