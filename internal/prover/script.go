package prover

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"time"
	"unicode"

	"repro/internal/logic"
)

// Result summarizes a completed (or abandoned) proof attempt.
type Result struct {
	Theorem   string
	QED       bool
	OpenGoals int
	Steps     int // user-visible proof steps, as reported in the paper
	PrimSteps int // primitive kernel inferences
	AutoPrim  int // primitive inferences performed by automated strategies
	Elapsed   time.Duration
	Trace     []string
}

// AutomationRatio is the fraction of primitive inferences carried out by
// automated strategies, the quantity behind the paper's "two-thirds of the
// proof steps can be automated" (§4.3).
func (r Result) AutomationRatio() float64 {
	if r.PrimSteps == 0 {
		return 0
	}
	return float64(r.AutoPrim) / float64(r.PrimSteps)
}

// Summary returns the result of the session so far.
func (p *Prover) Summary() Result {
	qed := p.QED()
	el := p.Elapsed
	if !qed {
		el = time.Since(p.started)
	}
	return Result{
		Theorem:   p.Theorem,
		QED:       qed,
		OpenGoals: len(p.goals),
		Steps:     p.Steps,
		PrimSteps: p.PrimSteps,
		AutoPrim:  p.AutoPrim,
		Elapsed:   el,
		Trace:     append([]string(nil), p.Trace...),
	}
}

// RunScript executes a PVS-style proof script against the session, e.g.
//
//	(skosimp*) (expand "bestPath") (flatten)
//	(expand "bestPathCost") (flatten) (inst -2 P2!1 C2!1) (assert)
//
// Each parenthesized command is one proof step. Terms in inst commands may
// be integers, quoted strings, identifiers (skolem constants such as C2!1
// or variables), or applications f(a,b).
func (p *Prover) RunScript(script string) error {
	return p.RunScriptCtx(context.Background(), script)
}

// RunScriptCtx runs the script under ctx: the context is checked before
// every script command (and inside grind, per sub-goal), so a cancelled
// or deadlined proof stops at the next coarse boundary with an error
// wrapping both ErrCancelled and the context cause. Partial step counts
// remain readable via Summary; the proof is simply not QED.
func (p *Prover) RunScriptCtx(ctx context.Context, script string) error {
	cmds, err := parseScript(script)
	if err != nil {
		return err
	}
	if ctx.Done() != nil {
		p.ctx = ctx
		defer func() { p.ctx = nil }()
	}
	for _, cmd := range cmds {
		if p.cancelled() {
			return fmt.Errorf("%w before %s: %w", ErrCancelled, cmd.String(), context.Cause(p.ctx))
		}
		if err := p.runCommand(cmd); err != nil {
			return fmt.Errorf("prover: %s: %w", cmd.String(), err)
		}
	}
	return nil
}

// Prove runs the script and requires the proof to complete.
func (p *Prover) Prove(script string) (Result, error) {
	if err := p.RunScript(script); err != nil {
		return p.Summary(), err
	}
	res := p.Summary()
	if !res.QED {
		return res, fmt.Errorf("prover: %s: %d goals remain open", p.Theorem, res.OpenGoals)
	}
	return res, nil
}

// ProveTheorem is a convenience wrapper: create a session for the theorem
// in th and run script to completion.
func ProveTheorem(th *logic.Theory, theorem, script string) (Result, error) {
	p, err := New(th, theorem)
	if err != nil {
		return Result{}, err
	}
	return p.Prove(script)
}

// sexpr is a parsed script command.
type sexpr struct {
	name string
	args []string
}

func (s sexpr) String() string {
	if len(s.args) == 0 {
		return "(" + s.name + ")"
	}
	return "(" + s.name + " " + strings.Join(s.args, " ") + ")"
}

func parseScript(src string) ([]sexpr, error) {
	var cmds []sexpr
	i := 0
	n := len(src)
	skipWS := func() {
		for i < n && (unicode.IsSpace(rune(src[i])) || src[i] == ';') {
			if src[i] == ';' { // comment to end of line
				for i < n && src[i] != '\n' {
					i++
				}
			} else {
				i++
			}
		}
	}
	for {
		skipWS()
		if i >= n {
			break
		}
		if src[i] != '(' {
			return nil, fmt.Errorf("prover: script: expected '(' at offset %d", i)
		}
		i++
		var toks []string
		for {
			skipWS()
			if i >= n {
				return nil, fmt.Errorf("prover: script: unterminated command")
			}
			if src[i] == ')' {
				i++
				break
			}
			if src[i] == '"' {
				j := i + 1
				for j < n && src[j] != '"' {
					j++
				}
				if j >= n {
					return nil, fmt.Errorf("prover: script: unterminated string")
				}
				toks = append(toks, src[i:j+1])
				i = j + 1
				continue
			}
			j := i
			depth := 0
			for j < n {
				c := src[j]
				if c == '(' {
					depth++
				} else if c == ')' {
					if depth == 0 {
						break
					}
					depth--
				} else if depth == 0 && (unicode.IsSpace(rune(c)) || c == '"') {
					break
				}
				j++
			}
			toks = append(toks, src[i:j])
			i = j
		}
		if len(toks) == 0 {
			return nil, fmt.Errorf("prover: script: empty command")
		}
		cmds = append(cmds, sexpr{name: toks[0], args: toks[1:]})
	}
	return cmds, nil
}

func (p *Prover) runCommand(cmd sexpr) error {
	switch cmd.name {
	case "skosimp*", "skosimp":
		return p.Skosimp()
	case "flatten":
		return p.Flatten()
	case "split":
		return p.Split()
	case "assert":
		return p.Assert()
	case "grind":
		return p.Grind()
	case "postpone":
		return p.Postpone()
	case "expand":
		if len(cmd.args) != 1 {
			return fmt.Errorf("expand takes one argument")
		}
		return p.Expand(unquote(cmd.args[0]))
	case "induct":
		if len(cmd.args) != 1 {
			return fmt.Errorf("induct takes one argument")
		}
		return p.Induct(unquote(cmd.args[0]))
	case "lemma":
		if len(cmd.args) != 1 {
			return fmt.Errorf("lemma takes one argument")
		}
		return p.Lemma(unquote(cmd.args[0]))
	case "hide":
		if len(cmd.args) != 1 {
			return fmt.Errorf("hide takes one argument")
		}
		idx, err := strconv.Atoi(cmd.args[0])
		if err != nil {
			return err
		}
		return p.Hide(idx)
	case "inst":
		if len(cmd.args) < 2 {
			return fmt.Errorf("inst takes an index and at least one term")
		}
		idx, err := strconv.Atoi(cmd.args[0])
		if err != nil {
			return err
		}
		terms := make([]logic.Term, 0, len(cmd.args)-1)
		for _, a := range cmd.args[1:] {
			t, err := ParseTerm(unquote(a))
			if err != nil {
				return err
			}
			terms = append(terms, t)
		}
		return p.Inst(idx, terms...)
	default:
		return fmt.Errorf("unknown proof command %q", cmd.name)
	}
}

func unquote(s string) string {
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		return s[1 : len(s)-1]
	}
	return s
}

// ParseTerm parses a term in script syntax: an integer, a 'quoted string',
// an identifier (a skolem constant if it contains '!', otherwise a
// variable), or an application f(a,b,...).
func ParseTerm(s string) (logic.Term, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, fmt.Errorf("prover: empty term")
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return logic.IntT(i), nil
	}
	if len(s) >= 2 && s[0] == '\'' && s[len(s)-1] == '\'' {
		return logic.StrT(s[1 : len(s)-1]), nil
	}
	if open := strings.IndexByte(s, '('); open > 0 && strings.HasSuffix(s, ")") {
		fn := s[:open]
		inner := s[open+1 : len(s)-1]
		var args []logic.Term
		for _, part := range splitArgs(inner) {
			if strings.TrimSpace(part) == "" {
				continue
			}
			t, err := ParseTerm(part)
			if err != nil {
				return nil, err
			}
			args = append(args, t)
		}
		return logic.App{Fn: fn, Args: args}, nil
	}
	if strings.Contains(s, "!") {
		return logic.App{Fn: s}, nil // skolem constant
	}
	switch s {
	case "true":
		return logic.BoolT(true), nil
	case "false":
		return logic.BoolT(false), nil
	}
	return logic.V(s), nil
}

// splitArgs splits a comma-separated argument list respecting parentheses.
func splitArgs(s string) []string {
	var parts []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	parts = append(parts, s[start:])
	return parts
}
