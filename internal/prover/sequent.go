// Package prover implements the mechanized theorem prover of FVN (arc 5 of
// Figure 1 in the paper). It is a sequent-calculus kernel with PVS-style
// interactive tactics — skosimp, expand, flatten, split, inst, case, lemma,
// induct, assert, grind — sufficient to replay the proofs reported in the
// paper: the route-optimality theorem bestPathStrong in seven steps (§3.1),
// the metarouting proof obligations (§3.3), and rule-induction proofs over
// inductive NDlog specifications.
//
// The kernel is small and the tactics reduce to primitive inferences on
// sequents, so every completed proof is checkable: a proof succeeds only
// when every leaf goal is closed by an axiom rule or by the decision
// procedure, whose reasoning (congruence closure plus Fourier–Motzkin
// linear arithmetic) is sound for the theory's intended semantics.
package prover

import (
	"fmt"
	"strings"

	"repro/internal/logic"
)

// Sequent is a multi-conclusion sequent Γ ⊢ Δ. Following PVS conventions,
// antecedent formulas are addressed by negative indices (-1 is Ante[0]) and
// consequent formulas by positive indices (1 is Cons[0]).
type Sequent struct {
	Ante []logic.Formula
	Cons []logic.Formula
}

// Clone returns a shallow copy with fresh slices (formulas are immutable).
func (s Sequent) Clone() Sequent {
	return Sequent{
		Ante: append([]logic.Formula(nil), s.Ante...),
		Cons: append([]logic.Formula(nil), s.Cons...),
	}
}

// Formula returns the formula at a PVS-style index.
func (s Sequent) Formula(idx int) (logic.Formula, error) {
	switch {
	case idx < 0 && -idx <= len(s.Ante):
		return s.Ante[-idx-1], nil
	case idx > 0 && idx <= len(s.Cons):
		return s.Cons[idx-1], nil
	default:
		return nil, fmt.Errorf("prover: no formula at index %d (antecedent %d, consequent %d)", idx, len(s.Ante), len(s.Cons))
	}
}

// Replace substitutes the formula at a PVS-style index.
func (s *Sequent) Replace(idx int, f logic.Formula) error {
	switch {
	case idx < 0 && -idx <= len(s.Ante):
		s.Ante[-idx-1] = f
		return nil
	case idx > 0 && idx <= len(s.Cons):
		s.Cons[idx-1] = f
		return nil
	default:
		return fmt.Errorf("prover: no formula at index %d", idx)
	}
}

// Remove deletes the formula at a PVS-style index.
func (s *Sequent) Remove(idx int) error {
	switch {
	case idx < 0 && -idx <= len(s.Ante):
		i := -idx - 1
		s.Ante = append(s.Ante[:i:i], s.Ante[i+1:]...)
		return nil
	case idx > 0 && idx <= len(s.Cons):
		i := idx - 1
		s.Cons = append(s.Cons[:i:i], s.Cons[i+1:]...)
		return nil
	default:
		return fmt.Errorf("prover: no formula at index %d", idx)
	}
}

// String renders the sequent in the PVS proof-window style.
func (s Sequent) String() string {
	var b strings.Builder
	for i, f := range s.Ante {
		fmt.Fprintf(&b, "[%d]  %s\n", -(i + 1), f.String())
	}
	b.WriteString("  |-------\n")
	for i, f := range s.Cons {
		fmt.Fprintf(&b, "[%d]  %s\n", i+1, f.String())
	}
	return b.String()
}

// FreeVarSet returns the free variables of all formulas in the sequent,
// plus all nullary-application names (skolem constants), used when
// generating fresh names.
func (s Sequent) FreeVarSet() map[string]bool {
	set := map[string]bool{}
	add := func(f logic.Formula) {
		for n := range logic.FreeVars(f) {
			set[n] = true
		}
		collectNullary(f, set)
	}
	for _, f := range s.Ante {
		add(f)
	}
	for _, f := range s.Cons {
		add(f)
	}
	return set
}

func collectNullary(f logic.Formula, set map[string]bool) {
	walkTerms(f, func(t logic.Term) {
		if a, ok := t.(logic.App); ok && len(a.Args) == 0 {
			set[a.Fn] = true
		}
	})
}

// walkTerms applies fn to every term occurring in f.
func walkTerms(f logic.Formula, fn func(logic.Term)) {
	var walkT func(t logic.Term)
	walkT = func(t logic.Term) {
		fn(t)
		if a, ok := t.(logic.App); ok {
			for _, arg := range a.Args {
				walkT(arg)
			}
		}
	}
	switch x := f.(type) {
	case logic.Pred:
		for _, t := range x.Args {
			walkT(t)
		}
	case logic.Eq:
		walkT(x.L)
		walkT(x.R)
	case logic.Cmp:
		walkT(x.L)
		walkT(x.R)
	case logic.Not:
		walkTerms(x.F, fn)
	case logic.And:
		for _, g := range x.Fs {
			walkTerms(g, fn)
		}
	case logic.Or:
		for _, g := range x.Fs {
			walkTerms(g, fn)
		}
	case logic.Implies:
		walkTerms(x.L, fn)
		walkTerms(x.R, fn)
	case logic.Iff:
		walkTerms(x.L, fn)
		walkTerms(x.R, fn)
	case logic.Forall:
		walkTerms(x.Body, fn)
	case logic.Exists:
		walkTerms(x.Body, fn)
	}
}

// containsFormula reports whether list contains a formula structurally equal
// to f.
func containsFormula(list []logic.Formula, f logic.Formula) bool {
	for _, g := range list {
		if logic.FormulaEqual(f, g) {
			return true
		}
	}
	return false
}
