// Package serve is the fvn verification service: an HTTP/JSON front end
// that runs the toolchain's long-running checks — proof-obligation
// suites, model checking, chaos campaigns, and distributed executions —
// as jobs with per-request resource caps, a bounded admission queue with
// backpressure, streaming progress events, and a persistent cross-run
// proof cache (internal/cache) shared by every request of the process
// and, because the cache is a file, across restarts.
//
// Cancellation contract: every job runs under a context derived from
// the server's base context (cancelled at shutdown), the request's
// deadline (capped by MaxTimeout), and the client connection (a
// disconnect cancels the job). A cancelled job reports
// "cancelled": true with whatever partial statistics the underlying
// engine produced — never a fabricated verdict.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/faults"
	"repro/internal/linear"
	"repro/internal/modelcheck"
	"repro/internal/netgraph"
	"repro/internal/obs"
	"repro/internal/verify"
)

// Options configures a Server. Zero values take the defaults noted on
// each field.
type Options struct {
	// CachePath backs the persistent verify-result cache; empty runs
	// with a process-local in-memory cache only.
	CachePath string
	// MaxConcurrent is the number of jobs allowed to execute at once
	// (default 8). Further admitted jobs wait in the queue.
	MaxConcurrent int
	// QueueDepth bounds the jobs waiting for an execution slot (default
	// 2×MaxConcurrent). Beyond it the server answers 429 with a
	// Retry-After header — backpressure instead of unbounded queuing.
	QueueDepth int
	// DefaultTimeout is the per-job wall-clock bound when the request
	// names none (default 60s); MaxTimeout caps what a request may ask
	// for (default 5m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxWorkers caps the per-job worker count (default NumCPU);
	// MaxStates caps a model-check request's state bound (default 1<<20);
	// MaxRuns caps a chaos request's campaign length (default 200).
	MaxWorkers int
	MaxStates  int
	MaxRuns    int
}

func (o *Options) fill() {
	if o.MaxConcurrent <= 0 {
		o.MaxConcurrent = 8
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 2 * o.MaxConcurrent
	}
	if o.DefaultTimeout <= 0 {
		o.DefaultTimeout = 60 * time.Second
	}
	if o.MaxTimeout <= 0 {
		o.MaxTimeout = 5 * time.Minute
	}
	if o.MaxWorkers <= 0 {
		o.MaxWorkers = runtime.NumCPU()
	}
	if o.MaxStates <= 0 {
		o.MaxStates = 1 << 20
	}
	if o.MaxRuns <= 0 {
		o.MaxRuns = 200
	}
}

// Server is the verification service. Create with New, mount Handler on
// an http.Server, and call Shutdown to drain.
type Server struct {
	opts  Options
	cache *cache.Store

	baseCtx    context.Context
	baseCancel context.CancelFunc
	closed     atomic.Bool

	sem     chan struct{} // execution slots
	waiting atomic.Int64  // jobs admitted but queued
	jobs    sync.WaitGroup
	jobID   atomic.Int64
	mux     *http.ServeMux

	// durMu guards durs, a ring of the most recent job wall-clock times.
	// Their mean drives the Retry-After estimate on 429 responses.
	durMu sync.Mutex
	durs  []time.Duration
	durAt int

	// Self-healing counters accumulated across chaos jobs that ran with
	// the reliability layer; /statusz reports them once nonzero.
	retransmits atomic.Int64
	checkpoints atomic.Int64
	restores    atomic.Int64
	repairPulls atomic.Int64
	relGiveUps  atomic.Int64
}

// New builds a Server, opening (or creating) the persistent cache when
// Options.CachePath is set.
func New(opts Options) (*Server, error) {
	opts.fill()
	var store *cache.Store
	if opts.CachePath != "" {
		var err error
		if store, err = cache.Open(opts.CachePath); err != nil {
			return nil, err
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:       opts,
		cache:      store,
		baseCtx:    ctx,
		baseCancel: cancel,
		sem:        make(chan struct{}, opts.MaxConcurrent),
		mux:        http.NewServeMux(),
	}
	s.mux.HandleFunc("POST /verify", s.job("verify", s.runVerify))
	s.mux.HandleFunc("POST /mc", s.job("mc", s.runMC))
	s.mux.HandleFunc("POST /chaos", s.job("chaos", s.runChaos))
	s.mux.HandleFunc("POST /run", s.job("run", s.runExec))
	s.mux.HandleFunc("GET /healthz", s.healthz)
	s.mux.HandleFunc("GET /statusz", s.statusz)
	return s, nil
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Cache exposes the persistent store (nil when CachePath was empty) —
// tests assert hit counts through it.
func (s *Server) Cache() *cache.Store { return s.cache }

// Shutdown gracefully drains the server: new jobs are rejected with 503,
// the base context is cancelled so in-flight jobs stop and write their
// partial (cancelled) responses, and the call waits — bounded by ctx —
// for every job to finish before closing the cache.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.closed.Swap(true) {
		return nil
	}
	s.baseCancel()
	done := make(chan struct{})
	go func() { s.jobs.Wait(); close(done) }()
	select {
	case <-done:
	case <-ctx.Done():
		return fmt.Errorf("serve: shutdown: %w", context.Cause(ctx))
	}
	return s.cache.Close()
}

// --- admission and job plumbing ---------------------------------------------

// admit acquires an execution slot, queuing up to QueueDepth jobs.
// It replies 429 (+Retry-After) on overload and 503 during shutdown,
// returning ok=false; on success the caller must invoke release.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) (release func(), ok bool) {
	if s.closed.Load() {
		http.Error(w, "server shutting down", http.StatusServiceUnavailable)
		return nil, false
	}
	release = func() { <-s.sem }
	select {
	case s.sem <- struct{}{}:
		return release, true
	default:
	}
	// All slots busy: join the bounded wait queue.
	if s.waiting.Add(1) > int64(s.opts.QueueDepth) {
		s.waiting.Add(-1)
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfter()))
		http.Error(w, "admission queue full", http.StatusTooManyRequests)
		return nil, false
	}
	defer s.waiting.Add(-1)
	select {
	case s.sem <- struct{}{}:
		return release, true
	case <-s.baseCtx.Done():
		http.Error(w, "server shutting down", http.StatusServiceUnavailable)
		return nil, false
	case <-r.Context().Done():
		return nil, false // client gave up while queued
	}
}

// recordDuration feeds a completed job's wall-clock time into the
// bounded ring the Retry-After estimate averages over.
func (s *Server) recordDuration(d time.Duration) {
	const window = 32
	s.durMu.Lock()
	if len(s.durs) < window {
		s.durs = append(s.durs, d)
	} else {
		s.durs[s.durAt%window] = d
	}
	s.durAt++
	s.durMu.Unlock()
}

// meanJobDur is the mean of the recent-duration window (0 with no
// completed jobs yet).
func (s *Server) meanJobDur() time.Duration {
	s.durMu.Lock()
	defer s.durMu.Unlock()
	if len(s.durs) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range s.durs {
		sum += d
	}
	return sum / time.Duration(len(s.durs))
}

// retryAfter estimates, in whole seconds, when an execution slot should
// free up for a rejected client: the jobs ahead of it (running plus
// queued) drain in waves of MaxConcurrent, each wave taking roughly the
// mean recent job duration. Before any job has completed it falls back
// to the default per-job timeout; either way the hint is capped at
// MaxTimeout, the longest any single job may run.
func (s *Server) retryAfter() int {
	mean := s.meanJobDur()
	if mean <= 0 {
		return int(s.opts.DefaultTimeout/time.Second) + 1
	}
	ahead := int64(len(s.sem)) + s.waiting.Load()
	waves := (ahead + int64(s.opts.MaxConcurrent) - 1) / int64(s.opts.MaxConcurrent)
	if waves < 1 {
		waves = 1
	}
	est := time.Duration(waves) * mean
	if est > s.opts.MaxTimeout {
		est = s.opts.MaxTimeout
	}
	return int(est/time.Second) + 1
}

// request is the common job envelope; endpoint-specific fields ride
// alongside it in each handler's own struct.
type request struct {
	// TimeoutMS bounds the job's wall clock (0: server default; capped
	// at MaxTimeout).
	TimeoutMS int `json:"timeout_ms"`
	// Workers caps in-job parallelism (0: 1 for verify, NumCPU for mc;
	// capped at MaxWorkers).
	Workers int `json:"workers"`
	// Stream switches the response to JSONL: trace events as they
	// happen, then one final result line (also ?stream=1).
	Stream bool `json:"stream"`
}

func (s *Server) clampWorkers(n, def int) int {
	if n <= 0 {
		n = def
	}
	return min(n, s.opts.MaxWorkers)
}

// jobCtx derives the job's context: server base (shutdown), request
// deadline (capped), client disconnect.
func (s *Server) jobCtx(r *http.Request, timeoutMS int) (context.Context, context.CancelFunc) {
	d := s.opts.DefaultTimeout
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
	}
	d = min(d, s.opts.MaxTimeout)
	ctx, cancel := context.WithTimeout(s.baseCtx, d)
	stop := context.AfterFunc(r.Context(), cancel)
	return ctx, func() { stop(); cancel() }
}

// streamSink is an obs.Sink that writes each trace event as one JSON
// line and flushes it immediately, so clients see progress while the
// job runs. It reuses the obs event schema; the final result line is
// distinguished by its own shape (no "kind" event field).
type streamSink struct {
	mu sync.Mutex
	w  http.ResponseWriter
	f  http.Flusher
}

func (ss *streamSink) Emit(ev obs.Event) {
	b, err := json.Marshal(ev)
	if err != nil {
		return
	}
	ss.mu.Lock()
	ss.w.Write(append(b, '\n'))
	if ss.f != nil {
		ss.f.Flush()
	}
	ss.mu.Unlock()
}

func (ss *streamSink) Close() error { return nil }

// runner executes one decoded job under ctx; tracer is non-nil only in
// streaming mode. It returns the JSON-marshalable result payload.
type runner func(ctx context.Context, body []byte, workers int, tracer *obs.Tracer) (any, error)

// job wraps a runner with the shared lifecycle: admission, context
// derivation, streaming setup, and the response envelope.
func (s *Server) job(kind string, run runner) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		release, ok := s.admit(w, r)
		if !ok {
			return
		}
		defer release()
		s.jobs.Add(1)
		defer s.jobs.Done()

		var req request
		body := make([]byte, 0)
		if r.Body != nil {
			b, err := readBody(r)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			body = b
		}
		if len(body) > 0 {
			if err := json.Unmarshal(body, &req); err != nil {
				http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
				return
			}
		}
		if r.URL.Query().Get("stream") == "1" {
			req.Stream = true
		}
		ctx, cancel := s.jobCtx(r, req.TimeoutMS)
		defer cancel()

		var tracer *obs.Tracer
		if req.Stream {
			w.Header().Set("Content-Type", "application/x-ndjson")
			f, _ := w.(http.Flusher)
			tracer = obs.NewTracer(&streamSink{w: w, f: f})
		} else {
			w.Header().Set("Content-Type", "application/json")
		}

		id := s.jobID.Add(1)
		start := time.Now()
		payload, err := run(ctx, body, req.Workers, tracer)
		if err == nil {
			// Only real executions feed the Retry-After estimate; decode
			// failures return in microseconds and would drag the mean down.
			s.recordDuration(time.Since(start))
		}
		if err != nil {
			if req.Stream {
				// Headers are gone; report the failure as the final line.
				writeJSONLine(w, map[string]any{"job": id, "kind": kind, "error": err.Error()})
				return
			}
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		env := map[string]any{
			"job":        id,
			"kind":       kind,
			"elapsed_ms": float64(time.Since(start)) / float64(time.Millisecond),
			"result":     payload,
		}
		if ctx.Err() != nil {
			env["cancelled"] = true
		}
		if req.Stream {
			writeJSONLine(w, env)
			return
		}
		b, _ := json.MarshalIndent(env, "", "  ")
		w.Write(append(b, '\n'))
	}
}

func writeJSONLine(w http.ResponseWriter, v any) {
	b, _ := json.Marshal(v)
	w.Write(append(b, '\n'))
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
}

func readBody(r *http.Request) ([]byte, error) {
	const maxBody = 1 << 20
	b, err := io.ReadAll(io.LimitReader(r.Body, maxBody+1))
	if err != nil {
		return nil, fmt.Errorf("reading request body: %w", err)
	}
	if len(b) > maxBody {
		return nil, fmt.Errorf("request body over %d bytes", maxBody)
	}
	return b, nil
}

// --- endpoint runners --------------------------------------------------------

// verifyRequest: POST /verify runs the standard proof-obligation suite
// through the parallel pipeline, backed by the server's shared
// persistent cache.
type verifyRequest struct {
	request
	// Cache disables result reuse when explicitly false.
	Cache *bool `json:"cache"`
}

type verifyResult struct {
	Obligations int  `json:"obligations"`
	Proved      int  `json:"proved"`
	Failed      int  `json:"failed"`
	CachedN     int  `json:"cached"`
	Cancelled   bool `json:"cancelled,omitempty"`
	// Open names the obligations not proved (failed or cancelled).
	Open []string `json:"open,omitempty"`
}

func (s *Server) runVerify(ctx context.Context, body []byte, workers int, tracer *obs.Tracer) (any, error) {
	var req verifyRequest
	if len(body) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			return nil, fmt.Errorf("bad verify request: %w", err)
		}
	}
	obls, err := verify.StandardSuite()
	if err != nil {
		return nil, err
	}
	opts := verify.Options{
		Workers: s.clampWorkers(workers, 1),
		Cache:   req.Cache == nil || *req.Cache,
		Tracer:  tracer,
	}
	if opts.Cache {
		opts.Persist = s.cache
	}
	rep := verify.NewPipeline(opts).Run(ctx, obls)
	res := verifyResult{
		Obligations: len(rep.Results),
		Proved:      rep.Proved(),
		Failed:      rep.Failed(),
		CachedN:     rep.Cached(),
		Cancelled:   rep.Cancelled,
	}
	for _, r := range rep.Results {
		if !r.Proved {
			res.Open = append(res.Open, r.Name)
		}
	}
	return res, nil
}

// mcRequest: POST /mc counts the reachable states of the program's
// transition system and checks quiescence.
type mcRequest struct {
	request
	// Src is NDlog source (default: the paper's path-vector protocol).
	Src string `json:"src"`
	// MaxStates caps the search (0: 1<<16; capped at the server limit).
	MaxStates int `json:"max_states"`
}

type mcResult struct {
	Reachable   int    `json:"reachable"`
	Transitions int    `json:"transitions"`
	Depth       int    `json:"depth"`
	Truncated   bool   `json:"truncated,omitempty"`
	Cancelled   bool   `json:"cancelled,omitempty"`
	Quiescence  string `json:"quiescence"`
}

func (s *Server) runMC(ctx context.Context, body []byte, workers int, tracer *obs.Tracer) (any, error) {
	var req mcRequest
	if len(body) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			return nil, fmt.Errorf("bad mc request: %w", err)
		}
	}
	src := req.Src
	if src == "" {
		src = core.PathVectorSrc
	}
	p, err := core.FromNDlog("serve", src)
	if err != nil {
		return nil, err
	}
	sys, err := p.TransitionSystem(nil)
	if err != nil {
		return nil, err
	}
	maxStates := req.MaxStates
	if maxStates <= 0 {
		maxStates = 1 << 16
	}
	maxStates = min(maxStates, s.opts.MaxStates)
	opts := modelcheck.Options{
		MaxStates: maxStates,
		Workers:   s.clampWorkers(workers, runtime.NumCPU()),
		Trace:     tracer,
	}
	ts := linear.TS{Sys: sys}
	count, cres := modelcheck.CountReachable(ctx, ts, opts)
	res := mcResult{
		Reachable:   count,
		Transitions: cres.Stats.Transitions,
		Depth:       cres.Stats.MaxDepth,
		Truncated:   cres.Stats.Truncated,
		Cancelled:   cres.Stats.Cancelled,
	}
	if res.Cancelled || res.Truncated {
		res.Quiescence = "inconclusive"
		return res, nil
	}
	q := modelcheck.Quiescent(ctx, ts, opts)
	res.Quiescence = q.Verdict.String()
	res.Cancelled = q.Stats.Cancelled
	return res, nil
}

// chaosRequest: POST /chaos runs a seeded fault campaign and reports
// invariant outcomes per run.
type chaosRequest struct {
	request
	Src  string `json:"src"`  // NDlog source (default path-vector)
	Topo string `json:"topo"` // e.g. "ring:6" (default ring:6)
	Runs int    `json:"runs"` // campaign length (default 5; capped)
	Seed uint64 `json:"seed"` // base seed (default 1)
	Hard bool   `json:"hard"` // skip the soft-state rewrite
	// Self-healing layer: ack/retransmit channels, periodic base-table
	// checkpoints (time units; 0 off), and anti-entropy repair.
	Reliable        bool    `json:"reliable"`
	CheckpointEvery float64 `json:"checkpoint_every"`
	AntiEntropy     bool    `json:"anti_entropy"`
}

type chaosResult struct {
	Runs      int      `json:"runs"`     // completed (cancelled partials excluded)
	Failures  int      `json:"failures"` // runs with invariant violations
	Cancelled bool     `json:"cancelled,omitempty"`
	Seeds     []uint64 `json:"failing_seeds,omitempty"`
	// Recovery is the campaign-wide restart-recovery percentile summary;
	// present only when runs measured recovery (self-healing on).
	Recovery *dist.RecoveryStats `json:"recovery_ms,omitempty"`
}

func (s *Server) runChaos(ctx context.Context, body []byte, workers int, tracer *obs.Tracer) (any, error) {
	var req chaosRequest
	if len(body) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			return nil, fmt.Errorf("bad chaos request: %w", err)
		}
	}
	src := req.Src
	if src == "" {
		src = core.PathVectorSrc
	}
	topoSpec := req.Topo
	if topoSpec == "" {
		topoSpec = "ring:6"
	}
	mk, err := topoBuilder(topoSpec)
	if err != nil {
		return nil, err
	}
	runs := req.Runs
	if runs <= 0 {
		runs = 5
	}
	runs = min(runs, s.opts.MaxRuns)
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	opts := dist.DefaultChaosOptions()
	opts.Hard = req.Hard
	opts.Reliable = req.Reliable
	opts.CheckpointEvery = req.CheckpointEvery
	opts.AntiEntropy = req.AntiEntropy
	opts.Trace = tracer
	c := &dist.Campaign{
		Source:   src,
		Topo:     mk,
		Runs:     runs,
		BaseSeed: seed,
		Gen:      faults.DefaultGenOptions(),
		Opts:     opts,
	}
	reports, err := c.Execute(ctx, nil)
	if err != nil {
		return nil, err
	}
	res := chaosResult{Cancelled: len(reports) < runs}
	for _, rep := range reports {
		if rep.Cancelled {
			res.Cancelled = true
			continue
		}
		res.Runs++
		if rep.Failed() {
			res.Failures++
			res.Seeds = append(res.Seeds, rep.Seed)
		}
		s.retransmits.Add(int64(rep.Stats.Retransmits))
		s.checkpoints.Add(int64(rep.Stats.Checkpoints))
		s.restores.Add(int64(rep.Stats.Restores))
		s.repairPulls.Add(int64(rep.Stats.RepairPulls))
		s.relGiveUps.Add(int64(rep.Stats.RelGiveUps))
	}
	res.Recovery = dist.RecoveryPercentiles(reports)
	return res, nil
}

// execRequest: POST /run executes the program on a topology and reports
// convergence.
type execRequest struct {
	request
	Src     string  `json:"src"`
	Topo    string  `json:"topo"`     // default ring:5
	MaxTime float64 `json:"max_time"` // simulated-time bound (default 10000)
	Seed    uint64  `json:"seed"`
	Loss    float64 `json:"loss"`
}

type execResult struct {
	Converged bool    `json:"converged"`
	Cancelled bool    `json:"cancelled,omitempty"`
	Time      float64 `json:"time"`
	Messages  int     `json:"messages"`
	Routes    int     `json:"route_changes"`
}

func (s *Server) runExec(ctx context.Context, body []byte, workers int, tracer *obs.Tracer) (any, error) {
	var req execRequest
	if len(body) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			return nil, fmt.Errorf("bad run request: %w", err)
		}
	}
	src := req.Src
	if src == "" {
		src = core.PathVectorSrc
	}
	topoSpec := req.Topo
	if topoSpec == "" {
		topoSpec = "ring:5"
	}
	mk, err := topoBuilder(topoSpec)
	if err != nil {
		return nil, err
	}
	p, err := core.FromNDlog("serve", src)
	if err != nil {
		return nil, err
	}
	maxTime := req.MaxTime
	if maxTime <= 0 {
		maxTime = 10000
	}
	net, err := p.Execute(mk(), dist.Options{
		MaxTime:           maxTime,
		LossRate:          req.Loss,
		Seed:              req.Seed,
		LoadTopologyLinks: true,
		Trace:             tracer,
	})
	if err != nil {
		return nil, err
	}
	r, err := net.RunCtx(ctx)
	if err != nil {
		return nil, err
	}
	return execResult{
		Converged: r.Converged,
		Cancelled: r.Cancelled,
		Time:      r.Time,
		Messages:  r.Stats.MessagesSent,
		Routes:    r.Stats.RouteChanges,
	}, nil
}

// topoBuilder parses a topology spec like ring:6 into a fresh-topology
// constructor (each chaos run mutates its own copy).
func topoBuilder(spec string) (func() *netgraph.Topology, error) {
	name, sizeStr, found := cutColon(spec)
	n := 4
	if found {
		v, err := strconv.Atoi(sizeStr)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad topology size %q", sizeStr)
		}
		n = v
	}
	var mk func(int) *netgraph.Topology
	switch name {
	case "line":
		mk = netgraph.Line
	case "ring":
		mk = netgraph.Ring
	case "grid":
		mk = func(n int) *netgraph.Topology { return netgraph.Grid(n, n) }
	case "clique":
		mk = netgraph.Clique
	case "star":
		mk = netgraph.Star
	case "tree":
		mk = netgraph.Tree
	default:
		return nil, fmt.Errorf("unknown topology %q", name)
	}
	return func() *netgraph.Topology { return mk(n) }, nil
}

func cutColon(s string) (before, after string, found bool) {
	for i := 0; i < len(s); i++ {
		if s[i] == ':' {
			return s[:i], s[i+1:], true
		}
	}
	return s, "", false
}

// --- health and status -------------------------------------------------------

func (s *Server) healthz(w http.ResponseWriter, r *http.Request) {
	if s.closed.Load() {
		http.Error(w, "shutting down", http.StatusServiceUnavailable)
		return
	}
	w.Write([]byte("ok\n"))
}

func (s *Server) statusz(w http.ResponseWriter, r *http.Request) {
	st := s.cache.Stats()
	env := map[string]any{
		"active":  len(s.sem),
		"waiting": s.waiting.Load(),
		"slots":   s.opts.MaxConcurrent,
		"queue":   s.opts.QueueDepth,
		"jobs":    s.jobID.Load(),
		"cache": map[string]any{
			"path":    s.cache.Path(),
			"entries": st.Entries,
			"hits":    st.Hits,
			"misses":  st.Misses,
			"corrupt": st.Corrupt,
		},
	}
	if mean := s.meanJobDur(); mean > 0 {
		env["mean_job_ms"] = float64(mean) / float64(time.Millisecond)
	}
	// Self-healing counters appear once a chaos job has exercised the
	// reliability layer; absent (not zero) before that.
	if s.retransmits.Load()+s.checkpoints.Load()+s.restores.Load()+s.repairPulls.Load() > 0 {
		env["selfheal"] = map[string]any{
			"retransmits":  s.retransmits.Load(),
			"checkpoints":  s.checkpoints.Load(),
			"restores":     s.restores.Load(),
			"repair_pulls": s.repairPulls.Load(),
			"give_ups":     s.relGiveUps.Load(),
		}
	}
	w.Header().Set("Content-Type", "application/json")
	b, _ := json.MarshalIndent(env, "", "  ")
	w.Write(append(b, '\n'))
}
