package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Shutdown(context.Background())
	})
	return s, ts
}

// post sends a JSON job request and decodes the response envelope.
func post(t *testing.T, url, path, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("POST %s: reading response: %v", path, err)
	}
	var env map[string]any
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(b, &env); err != nil {
			t.Fatalf("POST %s: bad envelope %q: %v", path, b, err)
		}
	}
	return resp.StatusCode, env
}

func result(t *testing.T, env map[string]any) map[string]any {
	t.Helper()
	res, ok := env["result"].(map[string]any)
	if !ok {
		t.Fatalf("envelope has no result object: %v", env)
	}
	return res
}

// TestConcurrentMixedJobs is the acceptance load: at least 8 concurrent
// jobs of all four kinds against one server, every one admitted and
// completed with a well-formed envelope.
func TestConcurrentMixedJobs(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxConcurrent: 8})
	jobs := []struct{ path, body string }{
		{"/verify", `{}`},
		{"/verify", `{"workers": 4}`},
		{"/mc", `{"max_states": 2048}`},
		{"/mc", `{"max_states": 2048, "workers": 2}`},
		{"/chaos", `{"runs": 2, "topo": "ring:4"}`},
		{"/chaos", `{"runs": 2, "topo": "line:4", "seed": 7}`},
		{"/run", `{}`},
		{"/run", `{"topo": "grid:3", "seed": 3}`},
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(jobs))
	for _, j := range jobs {
		j := j
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, env := post(t, ts.URL, j.path, j.body)
			if code != http.StatusOK {
				errs <- fmt.Errorf("%s %s: status %d", j.path, j.body, code)
				return
			}
			if env["kind"] == nil || env["result"] == nil {
				errs <- fmt.Errorf("%s: malformed envelope %v", j.path, env)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestPerRequestResourceCaps: request-supplied sizes are clamped to the
// server's configured limits, never trusted.
func TestPerRequestResourceCaps(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxRuns: 2, MaxStates: 512})

	code, env := post(t, ts.URL, "/chaos", `{"runs": 50, "topo": "ring:4"}`)
	if code != http.StatusOK {
		t.Fatalf("chaos: status %d", code)
	}
	if runs := result(t, env)["runs"].(float64); runs != 2 {
		t.Errorf("chaos runs = %v, want clamped to 2", runs)
	}

	code, env = post(t, ts.URL, "/mc", `{"max_states": 1048576}`)
	if code != http.StatusOK {
		t.Fatalf("mc: status %d", code)
	}
	if n := result(t, env)["reachable"].(float64); n > 512 {
		t.Errorf("mc reachable = %v states, server cap is 512", n)
	}
}

// TestAdmissionQueueOverflow: with the single execution slot held and
// the one queue seat taken, the next request is refused immediately
// with 429 and a Retry-After hint; when the slot frees, the queued job
// runs to completion.
func TestAdmissionQueueOverflow(t *testing.T) {
	s, ts := newTestServer(t, Options{MaxConcurrent: 1, QueueDepth: 1})

	s.sem <- struct{}{} // occupy the only slot
	queued := make(chan int, 1)
	go func() {
		code, _ := post(t, ts.URL, "/run", `{}`)
		queued <- code
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.waiting.Load() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("queued request never reached the wait queue")
		}
		time.Sleep(time.Millisecond)
	}

	resp, err := http.Post(ts.URL+"/run", "application/json", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-queue request: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}

	<-s.sem // free the slot; the queued job proceeds
	if code := <-queued; code != http.StatusOK {
		t.Fatalf("queued job after slot freed: status %d, want 200", code)
	}
}

// TestJobTimeoutReportsCancelled: a tiny per-request deadline cuts a
// long campaign short; the response still arrives (200) but is marked
// cancelled — partial results, not a verdict.
func TestJobTimeoutReportsCancelled(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxRuns: 500})
	code, env := post(t, ts.URL, "/chaos", `{"runs": 500, "timeout_ms": 100}`)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if env["cancelled"] != true {
		t.Errorf("envelope of a timed-out job not marked cancelled: %v", env)
	}
	res := result(t, env)
	if res["cancelled"] != true {
		t.Errorf("chaos result of a timed-out job not marked cancelled: %v", res)
	}
	if runs := res["runs"].(float64); runs >= 500 {
		t.Errorf("timed-out campaign completed all %v runs", runs)
	}
}

// TestCachePersistsAcrossRestart is the acceptance check for the
// persistent cache: a second server opened on the same cache file
// serves the whole verify suite from cache.
func TestCachePersistsAcrossRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")

	a, tsA := newTestServer(t, Options{CachePath: path})
	code, env := post(t, tsA.URL, "/verify", `{"workers": 4}`)
	if code != http.StatusOK {
		t.Fatalf("first verify: status %d", code)
	}
	first := result(t, env)

	// Same suite on the same server: everything replays from cache.
	code, env = post(t, tsA.URL, "/verify", `{}`)
	if code != http.StatusOK {
		t.Fatalf("second verify: status %d", code)
	}
	warm := result(t, env)
	if warm["cached"].(float64) != warm["obligations"].(float64) {
		t.Errorf("resubmitted suite: %v of %v obligations cached, want all",
			warm["cached"], warm["obligations"])
	}
	if err := a.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	tsA.Close()

	// Fresh process (new Server, same file): still a full cache hit.
	_, tsB := newTestServer(t, Options{CachePath: path})
	code, env = post(t, tsB.URL, "/verify", `{}`)
	if code != http.StatusOK {
		t.Fatalf("post-restart verify: status %d", code)
	}
	cold := result(t, env)
	if cold["cached"].(float64) != cold["obligations"].(float64) {
		t.Errorf("post-restart suite: %v of %v obligations cached, want all",
			cold["cached"], cold["obligations"])
	}
	if cold["proved"] != first["proved"] {
		t.Errorf("cached verdicts differ: proved %v after restart, %v fresh",
			cold["proved"], first["proved"])
	}
}

// TestShutdownCancelsInFlightJobs: Shutdown fires the base context, the
// long-running job writes its partial (cancelled) response, and new
// requests are refused with 503.
func TestShutdownCancelsInFlightJobs(t *testing.T) {
	s, err := New(Options{MaxRuns: 500})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	type outcome struct {
		code int
		env  map[string]any
	}
	done := make(chan outcome, 1)
	go func() {
		code, env := post(t, ts.URL, "/chaos", `{"runs": 500}`)
		done <- outcome{code, env}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for len(s.sem) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("long job never started")
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("graceful shutdown failed: %v", err)
	}
	out := <-done
	if out.code != http.StatusOK {
		t.Fatalf("in-flight job during shutdown: status %d, want 200 with partial result", out.code)
	}
	if out.env["cancelled"] != true {
		t.Errorf("in-flight job not cancelled by shutdown: %v", out.env)
	}

	resp, err := http.Post(ts.URL+"/run", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("request after shutdown: status %d, want 503", resp.StatusCode)
	}
}

// TestStreamEmitsProgressThenResult: stream=1 responses are JSONL —
// trace events as they happen, then exactly one final envelope line.
func TestStreamEmitsProgressThenResult(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, err := http.Post(ts.URL+"/run?stream=1", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q, want application/x-ndjson", ct)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(b)), "\n")
	if len(lines) < 2 {
		t.Fatalf("stream produced %d lines, want trace events plus a result line:\n%s", len(lines), b)
	}
	for i, ln := range lines {
		if !json.Valid([]byte(ln)) {
			t.Fatalf("stream line %d is not JSON: %q", i, ln)
		}
	}
	var last map[string]any
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatal(err)
	}
	if last["result"] == nil || last["kind"] != "run" {
		t.Errorf("final stream line is not the result envelope: %v", last)
	}
	for _, ln := range lines[:len(lines)-1] {
		var ev map[string]any
		json.Unmarshal([]byte(ln), &ev)
		if ev["result"] != nil {
			t.Errorf("result envelope emitted before the end of the stream: %q", ln)
		}
	}
}

// TestHealthzStatusz sanity-checks the introspection endpoints.
func TestHealthzStatusz(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: status %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var st map[string]any
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatalf("statusz is not JSON: %v\n%s", err, b)
	}
	for _, k := range []string{"active", "slots", "queue", "jobs", "cache"} {
		if _, ok := st[k]; !ok {
			t.Errorf("statusz missing %q: %s", k, b)
		}
	}
}

// TestRetryAfterReflectsLoad: the 429 Retry-After hint is derived from
// the live queue depth and the mean recent job duration — before any job
// completes it falls back to the default per-job timeout, afterwards it
// estimates the drain time of the jobs ahead of the rejected client.
func TestRetryAfterReflectsLoad(t *testing.T) {
	s, ts := newTestServer(t, Options{
		MaxConcurrent: 1, QueueDepth: 1, DefaultTimeout: 45 * time.Second,
	})

	// Cold server: no completed jobs, so the hint is the old fixed
	// fallback (DefaultTimeout + 1).
	if got := s.retryAfter(); got != 46 {
		t.Fatalf("cold retryAfter = %d, want 46", got)
	}

	s.recordDuration(2 * time.Second)
	s.recordDuration(4 * time.Second)
	s.sem <- struct{}{} // occupy the only slot
	queued := make(chan int, 1)
	go func() {
		code, _ := post(t, ts.URL, "/run", `{}`)
		queued <- code
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.waiting.Load() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("queued request never reached the wait queue")
		}
		time.Sleep(time.Millisecond)
	}

	// Two jobs ahead (one running, one queued) drain in two waves of the
	// 3s mean: the overflow response must carry that estimate, not the
	// 46s fallback.
	resp, err := http.Post(ts.URL+"/run", "application/json", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-queue request: status %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "7" {
		t.Errorf("Retry-After = %q, want \"7\" (2 waves x 3s mean + 1)", got)
	}

	<-s.sem
	if code := <-queued; code != http.StatusOK {
		t.Fatalf("queued job after slot freed: status %d, want 200", code)
	}
}

// TestStatuszReportsSelfHealCounters: after a chaos job runs with the
// reliability layer, /statusz exposes the accumulated checkpoint and
// repair counters; before any such job the section is absent entirely.
func TestStatuszReportsSelfHealCounters(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	statusz := func() map[string]any {
		t.Helper()
		resp, err := http.Get(ts.URL + "/statusz")
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var st map[string]any
		if err := json.Unmarshal(b, &st); err != nil {
			t.Fatalf("statusz is not JSON: %v\n%s", err, b)
		}
		return st
	}

	if _, ok := statusz()["selfheal"]; ok {
		t.Fatal("statusz reports selfheal counters before any self-healing job")
	}

	code, env := post(t, ts.URL, "/chaos",
		`{"runs": 3, "topo": "ring:4", "reliable": true, "checkpoint_every": 10, "anti_entropy": true}`)
	if code != http.StatusOK {
		t.Fatalf("chaos: status %d", code)
	}
	if fails := result(t, env)["failures"].(float64); fails != 0 {
		t.Fatalf("self-healing chaos campaign had %v failing runs: %v", fails, env)
	}

	sh, ok := statusz()["selfheal"].(map[string]any)
	if !ok {
		t.Fatal("statusz missing selfheal section after a self-healing chaos job")
	}
	if sh["checkpoints"].(float64) <= 0 {
		t.Errorf("selfheal checkpoints = %v, want > 0", sh["checkpoints"])
	}
	for _, k := range []string{"retransmits", "restores", "repair_pulls", "give_ups"} {
		if _, ok := sh[k]; !ok {
			t.Errorf("selfheal section missing %q: %v", k, sh)
		}
	}
}
