package store

import (
	"fmt"

	"repro/internal/ndlog"
	"repro/internal/value"
)

// This file implements the batched (columnar) plan executor. Where the
// scalar Exec recurses one candidate tuple at a time through the step
// list — paying per probe for table resolution, string key encoding, and
// a string-map bucket lookup — BatchExec pushes a Batch of rows through
// the same steps:
//
//   - Rows are column slices, one []value.V per frame slot bound between
//     the first and the last scan step (slots bound before the first scan
//     are constant for the whole run and stay in the frame).
//   - Filters and anti-joins between scans compact the batch through a
//     selection vector instead of copying columns.
//   - Index probes hash the key values directly (splitmix64-mixed, see
//     value.Hash64) into a flat open-addressing table — no string
//     encoding, collisions verified against the stored key.
//   - The last scan step is fused with emission: candidates bind straight
//     into the frame, trailing filters/assigns/negations run per row, and
//     the frame is handed to emit — so the widest intermediate result is
//     never materialized.
//
// The emit contract is identical to the scalar executor's (same frame
// layout, same emission order for shuffle-free and one- and two-scan
// shuffled plans, same probe counts, CurTuple valid per emitted row), so
// the scalar Exec doubles as a differential-testing oracle.

// Runner is the interface shared by the scalar Exec (the retained
// oracle) and the batched BatchExec, letting the centralized engine and
// the distributed runtime switch between them.
type Runner interface {
	Run(ts TableSource, delta []value.Tuple, seed []value.V, emit func([]value.V) error) (int64, error)
	Probes() int64
	Env() *ndlog.EvalEnv
	CurTuple(i int) value.Tuple
	SetShuffle(*Shuffler)
}

var (
	_ Runner = (*Exec)(nil)
	_ Runner = (*BatchExec)(nil)
)

// view kinds: how a compiled expression is read for one batch row.
const (
	vFrame uint8 = iota // constant for the run, or loaded: read env.Frame[slot]
	vCol                // read cols[slot][row] (assign-materialized slots)
	vAnt                // read ants[slot][row][col] (scan-bound slots)
	vLit                // literal value
	vExpr               // general: load the row into the frame, then Eval
)

// bview reads one expression for a given row. Slots bound by a non-pivot
// scan are never materialized as columns — row r of that step's candidate
// tuples is kept anyway (ants, for CurTuple), so the binding is read
// straight out of the tuple (vAnt).
type bview struct {
	kind uint8
	slot int // vFrame/vCol: frame slot; vAnt: ant ordinal
	col  int // vAnt: tuple column
	val  value.V
	expr ndlog.CExpr
}

// bop kinds: how one candidate-tuple column is processed.
const (
	bBind    uint8 = iota // bind tup[col] into the batch column for slot
	bCmpCol               // require tup[col] == tup[cmpCol] (same-step dup var)
	bCmpView              // require tup[col] == view value
)

// bop processes one candidate column of a batched scan/delta step.
type bop struct {
	kind   uint8
	col    int
	slot   int // bBind target
	cmpCol int
	view   bview
}

// bstep is the compiled batched form of one plan step.
type bstep struct {
	st        *ndlog.Step
	keys      []bview // Scan/NotExists index key views
	checks    []bop   // Scan/Delta candidate checks (run before binds)
	binds     []bop   // Scan/Delta candidate binds (pivot frame writes)
	gatherMat []int   // assign-materialized columns copied on expansion
	nAnts     int     // ant columns existing before this step
	view      bview   // Assign/Filter expression view
	load      []int   // batch slots to load for vExpr views at this step
}

// BatchExec evaluates one compiled plan over columnar batches. Like
// Exec it is single-goroutine state; create one per plan per evaluator.
// Parallel evaluators must build the indexes it probes in a
// single-threaded phase first (see Prepare).
type BatchExec struct {
	Plan *ndlog.Plan

	env     ndlog.EvalEnv
	shuffle *Shuffler
	dedup   bool

	// static shape, computed once in NewBatchExec
	firstScan  int       // first Scan/Delta step; len(Steps) if none
	pivot      int       // last Scan/Delta step; -1 if none
	batchSlots []int     // slots bound in [firstScan, pivot), in bind order
	slotAnt    []int32   // per slot: ant ordinal sourcing it, or -1 (cols)
	slotCol    []int32   // per slot: tuple column within that ant
	antPre     []int     // ant step indices before the pivot, in step order
	loadAnts   []loadSrc // pivot frame loads sourced from ant tuples
	loadCols   []int     // pivot frame loads sourced from materialized columns
	bsteps     []bstep

	// per-run buffers, reused across runs
	tabs    []*Table
	idxs    []*Index
	idxMap  []map[*Table]*Index // per-step index handle cache
	cols    [][]value.V         // per slot; non-nil only for batch slots
	out     [][]value.V         // expansion double-buffer
	ants    [][]value.Tuple     // per antPre ordinal: candidate tuple per row
	antsOut [][]value.Tuple
	sel     []int32
	selBuf  []int32
	scratch [][]value.Tuple // per-step shuffle buffers
	cur     []value.Tuple
	kvBuf   []value.V
	fpSeen  map[uint64]struct{}

	nrows     int
	selAll    bool // selection is the identity over nrows
	antShared bool // ants[0] aliases the scanned table's window (zero-copy)
	probes    int64
	ts        TableSource
	delta     []value.Tuple
	emitFunc  func([]value.V) error
}

// NewBatchExec returns a batched executor for p.
func NewBatchExec(p *ndlog.Plan) *BatchExec {
	x := &BatchExec{Plan: p, firstScan: len(p.Steps), pivot: -1}
	x.env.Frame = make([]value.V, p.NumSlots)
	x.env.CallBufs = make([][]value.V, len(p.CallArities))
	for i, n := range p.CallArities {
		x.env.CallBufs[i] = make([]value.V, n)
	}
	for i := range p.Steps {
		k := p.Steps[i].Kind
		if k == ndlog.StepScan || k == ndlog.StepDelta {
			if x.firstScan > i {
				x.firstScan = i
			}
			x.pivot = i
		}
	}
	x.tabs = make([]*Table, len(p.Steps))
	x.idxs = make([]*Index, len(p.Steps))
	x.idxMap = make([]map[*Table]*Index, len(p.Steps))
	x.cols = make([][]value.V, p.NumSlots)
	x.out = make([][]value.V, p.NumSlots)
	x.scratch = make([][]value.Tuple, len(p.Steps))
	x.cur = make([]value.Tuple, len(p.Steps))
	x.compile()
	return x
}

// compile classifies every expression of the batched middle section
// against the running set of batch-bound slots. Slots bound by non-pivot
// scans are sourced from the retained candidate tuples (vAnt) instead of
// materialized columns; only assign results become columns.
func (x *BatchExec) compile() {
	p := x.Plan
	batch := make([]bool, p.NumSlots)
	x.slotAnt = make([]int32, p.NumSlots)
	x.slotCol = make([]int32, p.NumSlots)
	for s := range x.slotAnt {
		x.slotAnt[s] = -1
	}
	x.bsteps = make([]bstep, len(p.Steps))
	classify := func(e ndlog.CExpr) bview {
		if v, ok := ndlog.ExprLit(e); ok {
			return bview{kind: vLit, val: v}
		}
		if s, ok := ndlog.ExprSlot(e); ok {
			if !batch[s] {
				return bview{kind: vFrame, slot: s}
			}
			if a := x.slotAnt[s]; a >= 0 {
				return bview{kind: vAnt, slot: int(a), col: int(x.slotCol[s])}
			}
			return bview{kind: vCol, slot: s}
		}
		return bview{kind: vExpr, expr: e}
	}
	var mat []int // assign-materialized slots so far
	for i := x.firstScan; i >= 0 && i <= x.pivot; i++ {
		st := &p.Steps[i]
		bs := &x.bsteps[i]
		bs.st = st
		bs.gatherMat = append([]int(nil), mat...)
		bs.nAnts = len(x.antPre)
		bs.load = append([]int(nil), x.batchSlots...)
		switch st.Kind {
		case ndlog.StepScan, ndlog.StepDelta:
			for j := range st.KeyExprs {
				bs.keys = append(bs.keys, classify(st.KeyExprs[j]))
			}
			local := map[int]int{} // slot bound by this step -> its column
			for _, op := range st.Ops {
				if op.Slot >= 0 {
					bs.binds = append(bs.binds, bop{kind: bBind, col: op.Col, slot: op.Slot})
					local[op.Slot] = op.Col
					continue
				}
				if s, ok := ndlog.ExprSlot(op.Expr); ok {
					if c, dup := local[s]; dup {
						bs.checks = append(bs.checks, bop{kind: bCmpCol, col: op.Col, cmpCol: c})
						continue
					}
				}
				bs.checks = append(bs.checks, bop{kind: bCmpView, col: op.Col, view: classify(op.Expr)})
			}
			if i < x.pivot {
				for _, b := range bs.binds {
					batch[b.slot] = true
					x.batchSlots = append(x.batchSlots, b.slot)
					x.slotAnt[b.slot] = int32(len(x.antPre))
					x.slotCol[b.slot] = int32(b.col)
				}
				x.antPre = append(x.antPre, i)
			}
		case ndlog.StepNotExists:
			for j := range st.KeyExprs {
				bs.keys = append(bs.keys, classify(st.KeyExprs[j]))
			}
		case ndlog.StepAssign:
			bs.view = classify(st.Expr)
			if i < x.pivot {
				batch[st.Slot] = true
				x.batchSlots = append(x.batchSlots, st.Slot)
				mat = append(mat, st.Slot)
			}
		case ndlog.StepFilter:
			bs.view = classify(st.Expr)
		}
	}
	for _, s := range x.batchSlots {
		if a := x.slotAnt[s]; a >= 0 {
			x.loadAnts = append(x.loadAnts, loadSrc{slot: s, ant: int(a), col: int(x.slotCol[s])})
		} else {
			x.loadCols = append(x.loadCols, s)
		}
	}
	x.ants = make([][]value.Tuple, len(x.antPre))
	x.antsOut = make([][]value.Tuple, len(x.antPre))
}

// loadSrc is one precomputed pivot frame load.
type loadSrc struct{ slot, ant, col int }

// SetShuffle mirrors Exec.SetShuffle: seeded pseudo-random enumeration
// of scan candidates, consumed per scan step per input row in the same
// stream order as the scalar executor for one- and two-scan plans.
func (x *BatchExec) SetShuffle(s *Shuffler) { x.shuffle = s }

// SetDedup enables splitmix64 fingerprint dedup on join output: each
// fully bound frame is fingerprinted before emission and duplicate
// frames are suppressed. Like the model checker's state dedup this is
// unverified — distinct frames collide with probability ~2^-64.
func (x *BatchExec) SetDedup(on bool) {
	x.dedup = on
	if on && x.fpSeen == nil {
		x.fpSeen = make(map[uint64]struct{})
	}
}

// Probes returns the probe count of the last Run.
func (x *BatchExec) Probes() int64 { return x.probes }

// Env returns the executor's evaluation environment, for evaluating the
// plan's head expressions inside an emit callback.
func (x *BatchExec) Env() *ndlog.EvalEnv { return &x.env }

// CurTuple returns the candidate tuple bound at step i for the row
// currently being emitted (valid inside an emit callback, for steps in
// Plan.AntSteps).
func (x *BatchExec) CurTuple(i int) value.Tuple { return x.cur[i] }

// Prepare resolves and builds every index the plan probes, and compacts
// fully scanned tables. Parallel evaluators call it from a
// single-threaded phase so that concurrent Runs never mutate shared
// Table or Index state (Run itself then only reads prebuilt structures,
// besides whatever the emit callback writes).
func (x *BatchExec) Prepare(ts TableSource) { PreparePlan(ts, x.Plan) }

// PreparePlan builds every index p's batched executor will probe and
// compacts its fully scanned tables — the Prepare phase without needing
// the executor itself.
func PreparePlan(ts TableSource, p *ndlog.Plan) {
	for i := range p.Steps {
		st := &p.Steps[i]
		switch st.Kind {
		case ndlog.StepScan, ndlog.StepNotExists:
			t := ts.Table(st.Pred)
			if t == nil {
				continue
			}
			if len(st.KeyCols) > 0 {
				t.HashIndexOn(st.KeyCols)
			} else {
				t.All() // compact now, not mid-run
			}
		}
	}
}

// index returns the step's flat-hash index handle for t, resolving the
// table's index registry (a string-keyed map) only on first use.
func (x *BatchExec) index(i int, t *Table, cols []int) *Index {
	m := x.idxMap[i]
	if m == nil {
		m = map[*Table]*Index{}
		x.idxMap[i] = m
	}
	ix, ok := m[t]
	if !ok {
		ix = t.indexFor(cols)
		m[t] = ix
	}
	ix.ensureFlat(t)
	return ix
}

// Run evaluates the plan; the contract is Exec.Run's.
func (x *BatchExec) Run(ts TableSource, delta []value.Tuple, seed []value.V, emit func([]value.V) error) (int64, error) {
	if err := CheckDeltaArity(x.Plan, delta); err != nil {
		return 0, err
	}
	x.ts, x.delta, x.emitFunc = ts, delta, emit
	x.probes = 0
	if x.dedup {
		clear(x.fpSeen)
	}
	for i, s := range x.Plan.SeedSlots {
		x.env.Frame[s] = seed[i]
	}
	// Resolve tables and indexes once per run, and pin every scanned
	// table: deletions triggered from emit leave nil tombstones under our
	// windows instead of compacting them away.
	npinned := 0
	for i := range x.Plan.Steps {
		st := &x.Plan.Steps[i]
		x.tabs[i], x.idxs[i] = nil, nil
		switch st.Kind {
		case ndlog.StepScan, ndlog.StepNotExists:
			t := x.ts.Table(st.Pred)
			if t == nil {
				continue
			}
			x.tabs[i] = t
			t.Pin()
			npinned = i + 1
			if len(st.KeyCols) > 0 {
				x.idxs[i] = x.index(i, t, st.KeyCols)
			}
		}
	}
	x.antShared = false
	err := x.run()
	if x.antShared {
		x.ants[0] = nil // drop the aliased table window
		x.antShared = false
	}
	for i := 0; i < npinned; i++ {
		if x.tabs[i] != nil {
			x.tabs[i].Unpin()
		}
	}
	x.ts, x.delta, x.emitFunc = nil, nil, nil
	return x.probes, err
}

func (x *BatchExec) run() error {
	steps := x.Plan.Steps
	// Prelude: steps before the first scan see only run-constant slots;
	// evaluate them once on the frame.
	for i := 0; i < x.firstScan; i++ {
		ok, err := x.scalarStep(i)
		if err != nil || !ok {
			return err
		}
	}
	if x.pivot < 0 {
		// No scans at all: the prelude was the whole plan.
		return x.emitRow()
	}
	// Batched middle: expand scans, compact filters/anti-joins through
	// the selection vector, append assign columns.
	x.nrows, x.selAll = 1, true
	for i := x.firstScan; i < x.pivot; i++ {
		var err error
		switch steps[i].Kind {
		case ndlog.StepScan, ndlog.StepDelta:
			err = x.expand(i)
		case ndlog.StepNotExists:
			err = x.filterNotExists(i)
		case ndlog.StepAssign:
			err = x.assignCol(i)
		case ndlog.StepFilter:
			err = x.filterRows(i)
		}
		if err != nil {
			return err
		}
		if x.nrows == 0 || (!x.selAll && len(x.sel) == 0) {
			return nil
		}
	}
	return x.runPivot()
}

// rowAt maps a selection position to a row index.
func (x *BatchExec) rowAt(si int) int {
	if x.selAll {
		return si
	}
	return int(x.sel[si])
}

func (x *BatchExec) selLen() int {
	if x.selAll {
		return x.nrows
	}
	return len(x.sel)
}

// slotVal reads batch-bound slot s of row r from its source (ant tuple
// or materialized column).
func (x *BatchExec) slotVal(s, r int) value.V {
	if a := x.slotAnt[s]; a >= 0 {
		return x.ants[a][r][x.slotCol[s]]
	}
	return x.cols[s][r]
}

// loadRow gathers the batch-bound slots of row r into the frame, so a
// general expression can be evaluated scalar-style.
func (x *BatchExec) loadRow(slots []int, r int) {
	for _, s := range slots {
		x.env.Frame[s] = x.slotVal(s, r)
	}
}

// viewAt reads one view for row r.
func (x *BatchExec) viewAt(v *bview, load []int, r int) (value.V, error) {
	switch v.kind {
	case vAnt:
		return x.ants[v.slot][r][v.col], nil
	case vCol:
		return x.cols[v.slot][r], nil
	case vFrame:
		return x.env.Frame[v.slot], nil
	case vLit:
		return v.val, nil
	default:
		x.loadRow(load, r)
		return v.expr.Eval(&x.env)
	}
}

// stepHashKey evaluates the step's key views for row r, folding them
// into a probe hash and collecting them for collision verification. The
// common view kinds are read inline; only general expressions pay the
// viewAt indirection.
func (x *BatchExec) stepHashKey(bs *bstep, r int) (uint64, []value.V, error) {
	h := value.HashSeed
	kv := x.kvBuf[:0]
	for j := range bs.keys {
		k := &bs.keys[j]
		var v value.V
		switch k.kind {
		case vAnt:
			v = x.ants[k.slot][r][k.col]
		case vCol:
			v = x.cols[k.slot][r]
		case vFrame:
			v = x.env.Frame[k.slot]
		case vLit:
			v = k.val
		default:
			var err error
			v, err = x.viewAt(k, bs.load, r)
			if err != nil {
				x.kvBuf = kv[:0]
				return 0, nil, err
			}
		}
		h = v.Hash64(h)
		kv = append(kv, v)
	}
	x.kvBuf = kv
	return h, kv, nil
}

// checkOps runs the step's check ops against a candidate tuple.
func (x *BatchExec) checkOps(bs *bstep, tup value.Tuple, r int) (bool, error) {
	for ci := range bs.checks {
		op := &bs.checks[ci]
		switch op.kind {
		case bCmpCol:
			if !tup[op.col].Equal(tup[op.cmpCol]) {
				return false, nil
			}
		default:
			v, err := x.viewAt(&op.view, bs.load, r)
			if err != nil {
				return false, err
			}
			if !v.Equal(tup[op.col]) {
				return false, nil
			}
		}
	}
	return true, nil
}

// expand evaluates a non-pivot scan/delta step: every surviving row is
// joined against its candidates, producing a new batch. Bound slots are
// not materialized — the passing candidate tuples themselves become the
// step's ant column, and bindings are read out of them (vAnt). Only
// assign-materialized columns are gathered through the expansion.
func (x *BatchExec) expand(i int) error {
	bs := &x.bsteps[i]
	st := bs.st
	scan := st.Kind == ndlog.StepScan
	t := x.tabs[i]
	if scan && t == nil {
		x.nrows, x.selAll, x.sel = 0, true, x.sel[:0]
		return nil
	}
	// Zero-copy fast path: an unkeyed, check-free first scan over a
	// hole-free table is a 1:1 expansion of the table window — alias it
	// instead of copying tuple pointers.
	if scan && bs.nAnts == 0 && len(bs.gatherMat) == 0 && len(st.KeyCols) == 0 &&
		len(bs.checks) == 0 && x.shuffle == nil && t.holes == 0 {
		cands := t.All()
		x.probes += int64(len(cands))
		x.ants[0] = cands
		x.antShared = true
		x.nrows, x.selAll, x.sel = len(cands), true, x.sel[:0]
		return nil
	}
	for _, s := range bs.gatherMat {
		x.out[s] = x.out[s][:0]
	}
	for k := 0; k <= bs.nAnts && k < len(x.antsOut); k++ {
		x.antsOut[k] = x.antsOut[k][:0]
	}
	nOut := 0
	n := x.selLen()
	for si := 0; si < n; si++ {
		r := x.rowAt(si)
		var cands []value.Tuple
		if !scan {
			cands = x.delta
		} else if len(st.KeyCols) == 0 {
			cands = t.All()
		} else {
			h, kv, err := x.stepHashKey(bs, r)
			if err != nil {
				return err
			}
			cands = x.idxs[i].FlatBucket(h, kv)
		}
		if scan && x.shuffle != nil && len(cands) > 1 {
			cands = x.shuffle.Shuffle(cands, &x.scratch[i])
		}
		for _, tup := range cands {
			if scan && tup == nil { // tombstone of a deletion during this run
				continue
			}
			x.probes++
			ok, err := x.checkOps(bs, tup, r)
			if err != nil {
				return err
			}
			if !ok {
				continue
			}
			for _, s := range bs.gatherMat {
				x.out[s] = append(x.out[s], x.cols[s][r])
			}
			for k := 0; k < bs.nAnts; k++ {
				x.antsOut[k] = append(x.antsOut[k], x.ants[k][r])
			}
			x.antsOut[bs.nAnts] = append(x.antsOut[bs.nAnts], tup)
			nOut++
		}
	}
	for _, s := range bs.gatherMat {
		x.cols[s], x.out[s] = x.out[s], x.cols[s]
	}
	for k := 0; k <= bs.nAnts; k++ {
		x.ants[k], x.antsOut[k] = x.antsOut[k], x.ants[k]
	}
	if x.antShared {
		// ants[0] aliased the table window; the swap above copied its rows
		// into an owned buffer and parked the alias in antsOut[0]. Drop the
		// alias so it is never reused as an append target (that would write
		// into the table's own backing array).
		x.antsOut[0] = nil
		x.antShared = false
	}
	x.nrows, x.selAll, x.sel = nOut, true, x.sel[:0]
	return nil
}

// filterNotExists keeps the rows whose negation probe comes back empty.
func (x *BatchExec) filterNotExists(i int) error {
	bs := &x.bsteps[i]
	t := x.tabs[i]
	if t == nil {
		return nil // unknown predicate: negation trivially holds
	}
	keep := x.selBuf[:0]
	n := x.selLen()
	for si := 0; si < n; si++ {
		r := x.rowAt(si)
		x.probes++
		if len(bs.st.KeyCols) == 0 {
			if t.Len() == 0 {
				keep = append(keep, int32(r))
			}
			continue
		}
		h, kv, err := x.stepHashKey(bs, r)
		if err != nil {
			return err
		}
		if len(x.idxs[i].FlatBucket(h, kv)) == 0 {
			keep = append(keep, int32(r))
		}
	}
	x.selBuf = x.sel[:0]
	x.sel, x.selAll = keep, false
	return nil
}

// filterRows keeps the rows satisfying the filter expression.
func (x *BatchExec) filterRows(i int) error {
	bs := &x.bsteps[i]
	keep := x.selBuf[:0]
	n := x.selLen()
	for si := 0; si < n; si++ {
		r := x.rowAt(si)
		v, err := x.viewAt(&bs.view, bs.load, r)
		if err != nil {
			return err
		}
		if v.True() {
			keep = append(keep, int32(r))
		}
	}
	x.selBuf = x.sel[:0]
	x.sel, x.selAll = keep, false
	return nil
}

// assignCol computes the assign expression per row into a fresh column.
func (x *BatchExec) assignCol(i int) error {
	bs := &x.bsteps[i]
	slot := bs.st.Slot
	c := x.cols[slot]
	if cap(c) < x.nrows {
		c = make([]value.V, x.nrows)
	} else {
		c = c[:x.nrows]
	}
	n := x.selLen()
	for si := 0; si < n; si++ {
		r := x.rowAt(si)
		v, err := x.viewAt(&bs.view, bs.load, r)
		if err != nil {
			return err
		}
		c[r] = v
	}
	x.cols[slot] = c
	return nil
}

// runPivot fuses the last scan/delta step with the trailing scalar steps
// and emission: per row the bound slots load into the frame once, then
// every passing candidate binds, runs the tail, and emits.
func (x *BatchExec) runPivot() error {
	i := x.pivot
	bs := &x.bsteps[i]
	st := bs.st
	scan := st.Kind == ndlog.StepScan
	t := x.tabs[i]
	if scan && t == nil {
		return nil
	}
	n := x.selLen()
	keyed := scan && len(st.KeyCols) > 0
	singleKey := keyed && len(bs.keys) == 1
	hasChecks := len(bs.checks) > 0
	hasTail := i+1 < len(x.Plan.Steps)
	frame := x.env.Frame
	idx := x.idxs[i]
	lastLoaded := -1
	for si := 0; si < n; si++ {
		r := x.rowAt(si)
		if x.antShared && x.ants[0][r] == nil {
			continue // deleted under the aliased window by an earlier emit
		}
		var cands []value.Tuple
		if !scan {
			cands = x.delta
		} else if singleKey {
			// The single-value key of the step read inline, hashed, and
			// probed without the kvBuf round-trip.
			k := &bs.keys[0]
			var v value.V
			switch k.kind {
			case vAnt:
				v = x.ants[k.slot][r][k.col]
			case vCol:
				v = x.cols[k.slot][r]
			case vFrame:
				v = frame[k.slot]
			case vLit:
				v = k.val
			default:
				var err error
				v, err = x.viewAt(k, bs.load, r)
				if err != nil {
					return err
				}
			}
			cands = idx.FlatBucket1(v.Hash64(value.HashSeed), v)
		} else if keyed {
			h, kv, err := x.stepHashKey(bs, r)
			if err != nil {
				return err
			}
			cands = idx.FlatBucket(h, kv)
		} else {
			cands = t.All()
		}
		if scan && x.shuffle != nil && len(cands) > 1 {
			cands = x.shuffle.Shuffle(cands, &x.scratch[i])
		}
		if len(cands) == 0 {
			continue
		}
		if lastLoaded != r {
			for li := range x.loadAnts {
				ls := &x.loadAnts[li]
				frame[ls.slot] = x.ants[ls.ant][r][ls.col]
			}
			for _, s := range x.loadCols {
				frame[s] = x.cols[s][r]
			}
			for k, ai := range x.antPre {
				x.cur[ai] = x.ants[k][r]
			}
			lastLoaded = r
		}
		for _, tup := range cands {
			if scan && tup == nil {
				continue
			}
			x.probes++
			if hasChecks {
				ok, err := x.checkOps(bs, tup, r)
				if err != nil {
					return err
				}
				if !ok {
					continue
				}
			}
			for bi := range bs.binds {
				b := &bs.binds[bi]
				frame[b.slot] = tup[b.col]
			}
			x.cur[i] = tup
			if hasTail {
				pass := true
				var err error
				for ti := i + 1; ti < len(x.Plan.Steps); ti++ {
					pass, err = x.scalarStep(ti)
					if err != nil {
						return err
					}
					if !pass {
						break
					}
				}
				if !pass {
					continue
				}
			}
			if err := x.emitRow(); err != nil {
				return err
			}
		}
	}
	return nil
}

// scalarStep evaluates a non-scan step against the current frame,
// reporting whether evaluation continues (assign: always; filter /
// not-exists: the condition holds).
func (x *BatchExec) scalarStep(i int) (bool, error) {
	st := &x.Plan.Steps[i]
	switch st.Kind {
	case ndlog.StepAssign:
		v, err := st.Expr.Eval(&x.env)
		if err != nil {
			return false, err
		}
		x.env.Frame[st.Slot] = v
		return true, nil
	case ndlog.StepFilter:
		v, err := st.Expr.Eval(&x.env)
		if err != nil {
			return false, err
		}
		return v.True(), nil
	case ndlog.StepNotExists:
		t := x.tabs[i]
		if t == nil {
			return true, nil
		}
		x.probes++
		if len(st.KeyCols) == 0 {
			return t.Len() == 0, nil
		}
		h := value.HashSeed
		kv := x.kvBuf[:0]
		for _, e := range st.KeyExprs {
			v, err := e.Eval(&x.env)
			if err != nil {
				x.kvBuf = kv[:0]
				return false, err
			}
			h = v.Hash64(h)
			kv = append(kv, v)
		}
		x.kvBuf = kv
		return len(x.idxs[i].FlatBucket(h, kv)) == 0, nil
	}
	return false, fmt.Errorf("store: unexpected step kind %d in scalar tail", st.Kind)
}

// emitRow hands the fully bound frame to the emit callback, after the
// optional fingerprint dedup.
func (x *BatchExec) emitRow() error {
	if x.dedup {
		fp := value.Tuple(x.env.Frame).Hash64(value.HashSeed)
		if _, seen := x.fpSeen[fp]; seen {
			return nil
		}
		x.fpSeen[fp] = struct{}{}
	}
	return x.emitFunc(x.env.Frame)
}
