package store

import (
	"strings"
	"testing"

	"repro/internal/ndlog"
	"repro/internal/value"
)

// runPlan drives one executor over a compiled plan and returns the head
// tuples in emission order plus the probe count.
func runPlan(t *testing.T, x Runner, plan *ndlog.Plan, src TableSource, delta []value.Tuple) ([]string, int64) {
	t.Helper()
	var got []string
	probes, err := x.Run(src, delta, nil, func([]value.V) error {
		out := make(value.Tuple, len(plan.HeadExprs))
		if err := plan.BuildHead(x.Env(), out); err != nil {
			return err
		}
		got = append(got, out.String())
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return got, probes
}

// TestBatchMatchesScalarOnCompiledPlan runs the same join — two scans,
// an assignment, a filter, and a negation — through both the scalar
// oracle and the batched executor, over the full plan and the delta
// plan, and requires identical emission sequences and probe counts.
func TestBatchMatchesScalarOnCompiledPlan(t *testing.T) {
	prog := ndlog.MustParse("x", `
materialize(e, infinity, infinity, keys(1,2)).
materialize(block, infinity, infinity, keys(1,2)).
materialize(two, infinity, infinity, keys(1,2,3)).
r1 two(@A,C,S) :- e(@A,B), e(@B,C), S=1+1, A != C, !block(@A,C).
`)
	an, err := ndlog.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	mkSrc := func() execSource {
		e := New("e", 2, nil, 0)
		for _, pair := range [][2]string{{"a", "b"}, {"b", "c"}, {"b", "a"}, {"c", "d"}} {
			e.Insert(value.Tuple{value.Addr(pair[0]), value.Addr(pair[1])})
		}
		block := New("block", 2, nil, 0)
		block.Insert(value.Tuple{value.Addr("b"), value.Addr("d")})
		return execSource{"e": e, "block": block}
	}

	r := prog.Rules[0]
	for _, tc := range []struct {
		name  string
		plan  *ndlog.Plan
		delta []value.Tuple
	}{
		{"full", an.Plans[r].Full, nil},
		{"delta", an.Plans[r].Delta[0], []value.Tuple{{value.Addr("a"), value.Addr("b")}, {value.Addr("b"), value.Addr("c")}}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sGot, sProbes := runPlan(t, NewExec(tc.plan), tc.plan, mkSrc(), tc.delta)
			bGot, bProbes := runPlan(t, NewBatchExec(tc.plan), tc.plan, mkSrc(), tc.delta)
			if len(sGot) == 0 {
				t.Fatal("scalar oracle emitted nothing; bad test vector")
			}
			if strings.Join(sGot, " ") != strings.Join(bGot, " ") {
				t.Errorf("emissions differ: scalar %v, batched %v", sGot, bGot)
			}
			if sProbes != bProbes {
				t.Errorf("probes differ: scalar %d, batched %d", sProbes, bProbes)
			}
		})
	}
}

// TestDeltaArityMismatchRejected: a delta tuple whose arity does not
// match the plan's delta predicate must be a hard error from both
// executors, not a silently skipped tuple.
func TestDeltaArityMismatchRejected(t *testing.T) {
	prog := ndlog.MustParse("x", `
materialize(e, infinity, infinity, keys(1,2)).
materialize(two, infinity, infinity, keys(1,2)).
r1 two(@A,C) :- e(@A,B), e(@B,C).
`)
	an, err := ndlog.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	e := New("e", 2, nil, 0)
	e.Insert(value.Tuple{value.Addr("a"), value.Addr("b")})
	src := execSource{"e": e}
	dplan := an.Plans[prog.Rules[0]].Delta[0]
	bad := []value.Tuple{{value.Addr("a"), value.Addr("b"), value.Int(3)}}
	for _, x := range []Runner{NewExec(dplan), NewBatchExec(dplan)} {
		if _, err := x.Run(src, bad, nil, func([]value.V) error { return nil }); err == nil {
			t.Errorf("%T accepted arity-3 delta tuple for arity-2 plan", x)
		}
	}
}

// TestStepKeyErrorResetsBuffer: when a key expression errors mid-build
// (here: string + int), the reusable key buffer must come back empty,
// and a subsequent clean Run on the same executor must succeed.
func TestStepKeyErrorResetsBuffer(t *testing.T) {
	prog := ndlog.MustParse("x", `
materialize(in, infinity, infinity, keys(1,2)).
materialize(e, infinity, infinity, keys(1,2,3)).
materialize(out, infinity, infinity, keys(1,2)).
rk out(@A,B) :- in(@A,X), e(@A,X+1,B).
`)
	an, err := ndlog.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	in := New("in", 2, nil, 0)
	in.Insert(value.Tuple{value.Addr("a"), value.Str("s")}) // X+1 will error
	e := New("e", 3, nil, 0)
	e.Insert(value.Tuple{value.Addr("a"), value.Int(2), value.Addr("b")})
	src := execSource{"in": in, "e": e}
	plan := an.Plans[prog.Rules[0]].Full

	x := NewExec(plan)
	if _, err := x.Run(src, nil, nil, func([]value.V) error { return nil }); err == nil {
		t.Fatal("string + int key expression did not error")
	}
	if len(x.keyBuf) != 0 {
		t.Fatalf("keyBuf not reset after key error: %q", x.keyBuf)
	}
	bx := NewBatchExec(plan)
	if _, err := bx.Run(src, nil, nil, func([]value.V) error { return nil }); err == nil {
		t.Fatal("batched executor did not surface the key error")
	}

	// Fix the data; the same executors must recover cleanly.
	in.Delete(value.Tuple{value.Addr("a"), value.Str("s")})
	in.Insert(value.Tuple{value.Addr("a"), value.Int(1)})
	for _, x := range []Runner{x, bx} {
		got, _ := runPlan(t, x, plan, src, nil)
		if len(got) != 1 || got[0] != "(a,b)" {
			t.Fatalf("%T after recovery: %v, want [(a,b)]", x, got)
		}
	}
}

// TestLookupNestedKeysStayIndependent: Lookup builds its key in a local
// buffer, so a nested Lookup on the same index (or a mutation between
// lookups) cannot corrupt an outer lookup's bucket.
func TestLookupNestedKeysStayIndependent(t *testing.T) {
	tb := New("lk", 2, []int{0}, 0)
	tb.Put(tup(1, 7), 0)
	tb.Put(tup(2, 7), 0)
	tb.Put(tup(3, 8), 0)
	outer := tb.Lookup([]int{1}, []value.V{value.Int(7)})
	if len(outer) != 2 {
		t.Fatalf("outer bucket = %d tuples, want 2", len(outer))
	}
	for _, o := range outer {
		inner := tb.Lookup([]int{1}, []value.V{value.Int(8)})
		if len(inner) != 1 || inner[0][0].I != 3 {
			t.Fatalf("nested lookup inside iteration = %v", inner)
		}
		if o[1].I != 7 {
			t.Fatalf("outer tuple corrupted by nested lookup: %v", o)
		}
	}
	// A Put between lookups must not invalidate key state either.
	tb.Put(tup(4, 7), 0)
	if got := len(tb.Lookup([]int{1}, []value.V{value.Int(7)})); got != 3 {
		t.Fatalf("after put, bucket 7 = %d, want 3", got)
	}
}

// TestNestedScanDeleteRegression is the Table.All aliasing regression:
// a self-join scans p at two nesting depths while the emit callback
// deletes a p tuple that both the outer and inner scans have yet to
// reach. The delete must tombstone in place — never compact and shift
// tuples under the live iterations — so both executors emit exactly the
// joins visible at their probe time.
func TestNestedScanDeleteRegression(t *testing.T) {
	prog := ndlog.MustParse("x", `
materialize(p, infinity, infinity, keys(1,2)).
materialize(q, infinity, infinity, keys(1,2)).
rq q(@A,C) :- p(@A,B), p(@B,C).
`)
	an, err := ndlog.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	plan := an.Plans[prog.Rules[0]].Full

	for _, mk := range []func(*ndlog.Plan) Runner{
		func(p *ndlog.Plan) Runner { return NewExec(p) },
		func(p *ndlog.Plan) Runner { return NewBatchExec(p) },
	} {
		p := New("p", 2, nil, 0)
		for _, pair := range [][2]string{{"a", "b"}, {"b", "c"}, {"c", "d"}} {
			p.Insert(value.Tuple{value.Addr(pair[0]), value.Addr(pair[1])})
		}
		src := execSource{"p": p}
		x := mk(plan)
		var got []string
		_, err := x.Run(src, nil, nil, func([]value.V) error {
			out := make(value.Tuple, len(plan.HeadExprs))
			if err := plan.BuildHead(x.Env(), out); err != nil {
				return err
			}
			got = append(got, out.String())
			// The first emission (a,c) retracts p(c,d) mid-scan. The pending
			// join (b,c)+(c,d) must no longer fire, and the outer scan must
			// skip the tombstone rather than walk shifted memory.
			p.Delete(value.Tuple{value.Addr("c"), value.Addr("d")})
			return nil
		})
		if err != nil {
			t.Fatalf("%T: %v", x, err)
		}
		if len(got) != 1 || got[0] != "(a,c)" {
			t.Errorf("%T emissions = %v, want [(a,c)]", x, got)
		}
		if p.Len() != 2 {
			t.Errorf("%T: p.Len = %d, want 2", x, p.Len())
		}
		if all := p.All(); len(all) != 2 {
			t.Errorf("%T: All after run = %d tuples, want 2", x, len(all))
		}
	}
}

// TestDedupSuppressesDuplicateFrames: the only way a well-formed Run
// produces duplicate output frames is duplicate delta tuples from the
// caller; with dedup on, the splitmix64 fingerprint set collapses them.
func TestDedupSuppressesDuplicateFrames(t *testing.T) {
	prog := ndlog.MustParse("x", `
materialize(e, infinity, infinity, keys(1,2)).
materialize(two, infinity, infinity, keys(1,2)).
r1 two(@A,C) :- e(@A,B), e(@B,C).
`)
	an, err := ndlog.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	e := New("e", 2, nil, 0)
	e.Insert(value.Tuple{value.Addr("a"), value.Addr("b")})
	e.Insert(value.Tuple{value.Addr("b"), value.Addr("c")})
	src := execSource{"e": e}
	dplan := an.Plans[prog.Rules[0]].Delta[0]
	dup := []value.Tuple{
		{value.Addr("a"), value.Addr("b")},
		{value.Addr("a"), value.Addr("b")},
	}
	count := func(dedup bool) int {
		x := NewBatchExec(dplan)
		x.SetDedup(dedup)
		n := 0
		if _, err := x.Run(src, dup, nil, func([]value.V) error { n++; return nil }); err != nil {
			t.Fatal(err)
		}
		return n
	}
	if n := count(false); n != 2 {
		t.Fatalf("without dedup: %d emissions, want 2", n)
	}
	if n := count(true); n != 1 {
		t.Fatalf("with dedup: %d emissions, want 1", n)
	}
}

// TestShuffleParityScalarVsBatched: with same-seed shufflers, the
// batched executor draws permutations in the same stream order as the
// scalar oracle on a two-scan plan, so the jittered emission sequences
// are identical — the property the distributed runtime's bit-for-bit
// reproducibility rests on.
func TestShuffleParityScalarVsBatched(t *testing.T) {
	prog := ndlog.MustParse("x", `
materialize(e, infinity, infinity, keys(1,2)).
materialize(two, infinity, infinity, keys(1,2)).
r1 two(@A,C) :- e(@A,B), e(@B,C).
`)
	an, err := ndlog.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	mkSrc := func() execSource {
		e := New("e", 2, nil, 0)
		for _, pair := range [][2]string{
			{"a", "b"}, {"a", "c"}, {"b", "x"}, {"b", "y"}, {"c", "x"}, {"c", "y"},
		} {
			e.Insert(value.Tuple{value.Addr(pair[0]), value.Addr(pair[1])})
		}
		return execSource{"e": e}
	}
	plan := an.Plans[prog.Rules[0]].Full
	for seed := uint64(0); seed < 8; seed++ {
		sx := NewExec(plan)
		sx.SetShuffle(NewShuffler(seed))
		sGot, _ := runPlan(t, sx, plan, mkSrc(), nil)
		bx := NewBatchExec(plan)
		bx.SetShuffle(NewShuffler(seed))
		bGot, _ := runPlan(t, bx, plan, mkSrc(), nil)
		if strings.Join(sGot, " ") != strings.Join(bGot, " ") {
			t.Fatalf("seed %d: scalar %v, batched %v", seed, sGot, bGot)
		}
		if len(sGot) != 4 {
			t.Fatalf("seed %d: %d emissions, want 4", seed, len(sGot))
		}
	}
}
