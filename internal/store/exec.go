package store

import (
	"fmt"

	"repro/internal/ndlog"
	"repro/internal/value"
)

// TableSource resolves predicate names to tables. A nil result means the
// predicate has no tuples yet (positive atoms match nothing, negations
// trivially hold).
type TableSource interface {
	Table(pred string) *Table
}

// Exec evaluates one compiled plan. It owns the reusable frame, key
// buffer, call-argument buffers, per-step index handles, and scan
// scratch space, so the inner join loop does not allocate per probe. An
// Exec is single-goroutine state; create one per plan per evaluator.
type Exec struct {
	Plan *ndlog.Plan

	env     ndlog.EvalEnv
	keyBuf  []byte
	scratch [][]value.Tuple // per-step shuffle buffers
	idx     []map[*Table]*Index
	shuffle *Shuffler
	cur     []value.Tuple // per-step candidate bound by the active frame

	// per-Run state
	ts     TableSource
	delta  []value.Tuple
	emit   func([]value.V) error
	probes int64
}

// NewExec returns an executor for p.
func NewExec(p *ndlog.Plan) *Exec {
	x := &Exec{Plan: p}
	x.env.Frame = make([]value.V, p.NumSlots)
	x.env.CallBufs = make([][]value.V, len(p.CallArities))
	for i, n := range p.CallArities {
		x.env.CallBufs[i] = make([]value.V, n)
	}
	x.scratch = make([][]value.Tuple, len(p.Steps))
	x.idx = make([]map[*Table]*Index, len(p.Steps))
	x.cur = make([]value.Tuple, len(p.Steps))
	return x
}

// SetShuffle makes full scans enumerate in a seeded pseudo-random order
// drawn from s (the distributed runtime's timing-jitter model). Nil
// restores deterministic insertion-order scans.
func (x *Exec) SetShuffle(s *Shuffler) { x.shuffle = s }

// Run evaluates the plan: delta supplies the tuples for a StepDelta
// (semi-naive evaluation), seed pre-binds Plan.SeedSlots (seeded
// aggregate recomputation), and emit receives the frame once per
// satisfying assignment. The frame is reused across emissions; emit must
// copy what it keeps. Run returns the number of candidate tuples probed.
func (x *Exec) Run(ts TableSource, delta []value.Tuple, seed []value.V, emit func([]value.V) error) (int64, error) {
	if err := CheckDeltaArity(x.Plan, delta); err != nil {
		return 0, err
	}
	x.ts, x.delta, x.emit = ts, delta, emit
	x.probes = 0
	for i, s := range x.Plan.SeedSlots {
		x.env.Frame[s] = seed[i]
	}
	err := x.step(0)
	x.ts, x.delta, x.emit = nil, nil, nil
	return x.probes, err
}

// CheckDeltaArity validates the supplied delta tuples against the arity
// recorded at plan-build time. A mismatch is a planner or caller bug;
// reporting it up front keeps it from masquerading as an empty join.
func CheckDeltaArity(p *ndlog.Plan, delta []value.Tuple) error {
	if p.DeltaIdx < 0 {
		return nil
	}
	for _, tup := range delta {
		if len(tup) != p.DeltaArity {
			return fmt.Errorf("store: rule %s: delta tuple %v has arity %d, plan expects %d",
				p.Rule.Label, tup, len(tup), p.DeltaArity)
		}
	}
	return nil
}

// Probes returns the probe count of the last Run.
func (x *Exec) Probes() int64 { return x.probes }

// Env returns the executor's evaluation environment, for evaluating the
// plan's head expressions inside an emit callback.
func (x *Exec) Env() *ndlog.EvalEnv { return &x.env }

// CurTuple returns the candidate tuple bound at step i for the frame
// currently being emitted. Valid only inside an emit callback, and only
// for scan/delta steps (Plan.AntSteps); provenance recorders use it to
// resolve a firing's antecedent tuples.
func (x *Exec) CurTuple(i int) value.Tuple { return x.cur[i] }

func (x *Exec) index(i int, t *Table, cols []int) *Index {
	m := x.idx[i]
	if m == nil {
		m = map[*Table]*Index{}
		x.idx[i] = m
	}
	ix, ok := m[t]
	if !ok {
		ix = t.IndexOn(cols)
		m[t] = ix
	}
	return ix
}

func (x *Exec) step(i int) error {
	if i == len(x.Plan.Steps) {
		return x.emit(x.env.Frame)
	}
	st := &x.Plan.Steps[i]
	switch st.Kind {
	case ndlog.StepScan:
		t := x.ts.Table(st.Pred)
		if t == nil {
			return nil
		}
		// Pin for the duration of the candidate loop: a delete triggered
		// from inside emit (or a nested scan of the same table) must not
		// compact t.order — or shift an index bucket — under this
		// iteration. Deleted candidates become nil tombstones instead.
		// (Manual Unpin on every exit: a defer here costs ~30% on the
		// recursive hot path.)
		t.Pin()
		var cands []value.Tuple
		if len(st.KeyCols) == 0 {
			cands = t.All()
		} else {
			key, err := x.stepKey(st)
			if err != nil {
				t.Unpin()
				return err
			}
			cands = x.index(i, t, st.KeyCols).Bucket(key)
		}
		// The shuffle covers indexed scans too: ties broken by "last
		// emission wins" key replacement must see jitter on bucket order,
		// not just on full scans.
		if x.shuffle != nil && len(cands) > 1 {
			cands = x.shuffle.Shuffle(cands, &x.scratch[i])
		}
		for _, tup := range cands {
			if tup == nil { // tombstone of a deletion during this scan
				continue
			}
			x.probes++
			ok, err := x.applyOps(st, tup)
			if err == nil && ok {
				x.cur[i] = tup
				err = x.step(i + 1)
			}
			if err != nil {
				t.Unpin()
				return err
			}
		}
		t.Unpin()
		return nil
	case ndlog.StepDelta:
		for _, tup := range x.delta {
			if len(tup) != len(st.Ops) {
				// Unreachable after the up-front CheckDeltaArity; kept as a
				// hard failure so a future planner bug cannot silently drop
				// tuples again.
				return fmt.Errorf("store: rule %s: delta tuple %v does not match %d step ops",
					x.Plan.Rule.Label, tup, len(st.Ops))
			}
			x.probes++
			ok, err := x.applyOps(st, tup)
			if err != nil {
				return err
			}
			if !ok {
				continue
			}
			x.cur[i] = tup
			if err := x.step(i + 1); err != nil {
				return err
			}
		}
		return nil
	case ndlog.StepNotExists:
		t := x.ts.Table(st.Pred)
		if t == nil {
			return x.step(i + 1)
		}
		x.probes++
		if len(st.KeyCols) == 0 {
			if t.Len() > 0 {
				return nil
			}
			return x.step(i + 1)
		}
		key, err := x.stepKey(st)
		if err != nil {
			return err
		}
		if len(x.index(i, t, st.KeyCols).Bucket(key)) > 0 {
			return nil
		}
		return x.step(i + 1)
	case ndlog.StepAssign:
		v, err := st.Expr.Eval(&x.env)
		if err != nil {
			return err
		}
		x.env.Frame[st.Slot] = v
		return x.step(i + 1)
	case ndlog.StepFilter:
		v, err := st.Expr.Eval(&x.env)
		if err != nil {
			return err
		}
		if !v.True() {
			return nil
		}
		return x.step(i + 1)
	}
	return nil
}

// stepKey builds the step's index key into the reusable buffer. On
// error the buffer is reset to empty, never left holding a partially
// built key a later probe could mistake for a complete one.
func (x *Exec) stepKey(st *ndlog.Step) ([]byte, error) {
	b := x.keyBuf[:0]
	for j, e := range st.KeyExprs {
		if j > 0 {
			b = append(b, '|')
		}
		v, err := e.Eval(&x.env)
		if err != nil {
			x.keyBuf = b[:0]
			return nil, err
		}
		b = v.AppendKey(b)
	}
	x.keyBuf = b
	return b, nil
}

// applyOps binds and checks the non-key columns of a candidate tuple.
func (x *Exec) applyOps(st *ndlog.Step, tup value.Tuple) (bool, error) {
	for _, op := range st.Ops {
		if op.Slot >= 0 {
			x.env.Frame[op.Slot] = tup[op.Col]
			continue
		}
		v, err := op.Expr.Eval(&x.env)
		if err != nil {
			return false, err
		}
		if !v.Equal(tup[op.Col]) {
			return false, nil
		}
	}
	return true, nil
}

// Shuffler is a small deterministic PRNG (an LCG) driving the
// distributed runtime's scan-order jitter. Two runs with the same seed
// draw the same permutation stream.
type Shuffler struct{ state uint64 }

// NewShuffler returns a shuffler seeded from seed.
func NewShuffler(seed uint64) *Shuffler {
	return &Shuffler{state: seed ^ 0x9e3779b97f4a7c15}
}

func (s *Shuffler) next() uint64 {
	s.state = s.state*6364136223846793005 + 1442695040888963407
	return s.state >> 1
}

// Shuffle copies ts into *buf (reusing its capacity) and applies a
// Fisher-Yates permutation from the deterministic stream.
func (s *Shuffler) Shuffle(ts []value.Tuple, buf *[]value.Tuple) []value.Tuple {
	b := (*buf)[:0]
	b = append(b, ts...)
	*buf = b
	for i := len(b) - 1; i > 0; i-- {
		j := int(s.next() % uint64(i+1))
		b[i], b[j] = b[j], b[i]
	}
	return b
}
