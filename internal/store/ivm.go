package store

import (
	"errors"

	"repro/internal/ndlog"
	"repro/internal/value"
)

// This file is the storage side of incremental view maintenance: per-tuple
// support counts on Table (the counting algorithm for non-recursive
// strata) and the DRed re-derivation check (for recursive strata, where a
// cycle gives a tuple unboundedly many derivation trees and counts are
// unsound). Both are driven through the Runner interface, so the scalar
// Exec and the batched BatchExec execute the identical maintenance passes.

// ErrStop aborts a Runner.Run from inside its emit callback without
// reporting a failure — the early-exit signal of existence checks such as
// Rederivable. Run's other results are undefined after a stop; callers
// must treat the run as a boolean probe.
var ErrStop = errors.New("store: stop scan")

// AddSupport increments the derivation-support count of tup, returning
// the new count. Support counts identify tuples by full content (not by
// primary key): counting maintenance applies to set-semantics derived
// relations, where the two coincide.
func (t *Table) AddSupport(tup value.Tuple) int {
	if t.support == nil {
		t.support = map[string]int32{}
	}
	t.keyBuf = tup.AppendKey(t.keyBuf[:0])
	n := t.support[string(t.keyBuf)] + 1
	t.support[string(t.keyBuf)] = n
	return int(n)
}

// DropSupport decrements the support count of tup, returning the new
// count. A count never goes below zero; zero-count entries are removed.
func (t *Table) DropSupport(tup value.Tuple) int {
	if t.support == nil {
		return 0
	}
	t.keyBuf = tup.AppendKey(t.keyBuf[:0])
	n := t.support[string(t.keyBuf)]
	if n <= 1 {
		delete(t.support, string(t.keyBuf))
		return 0
	}
	t.support[string(t.keyBuf)] = n - 1
	return int(n - 1)
}

// SupportCount returns the current support count of tup.
func (t *Table) SupportCount(tup value.Tuple) int {
	if t.support == nil {
		return 0
	}
	t.keyBuf = tup.AppendKey(t.keyBuf[:0])
	return int(t.support[string(t.keyBuf)])
}

// ResetSupport discards all support counts (the table's contents are
// untouched). The next maintenance pass re-initializes them from a full
// evaluation.
func (t *Table) ResetSupport() { t.support = nil }

// HasSupport reports whether any support counts are currently tracked.
func (t *Table) HasSupport() bool { return t.support != nil }

// FrameSet deduplicates derivation frames across the plan variants of one
// rule. A rule with k body occurrences of a changed predicate emits the
// same derivation up to k times (once per delta position); hashing the
// frame through the plan's CanonSlots identifies the derivation
// independently of the emitting variant. Like every fingerprint dedup in
// this codebase, distinct frames collide with probability ~2^-64.
type FrameSet struct {
	seen map[uint64]struct{}
}

// Reset clears the set for the next changed tuple.
func (f *FrameSet) Reset() {
	if f.seen == nil {
		f.seen = map[uint64]struct{}{}
		return
	}
	clear(f.seen)
}

// Seen records the frame's canonical fingerprint, reporting whether it
// was already present.
func (f *FrameSet) Seen(p *ndlog.Plan, frame []value.V) bool {
	h := value.HashSeed
	for _, s := range p.CanonSlots {
		h = frame[s].Hash64(h)
	}
	if _, ok := f.seen[h]; ok {
		return true
	}
	if f.seen == nil {
		f.seen = map[uint64]struct{}{}
	}
	f.seen[h] = struct{}{}
	return false
}

// Rederivable is the DRed re-derivation check: it reports whether head
// can still be derived by the rule compiled into plan (a HeadSeeded
// variant) against the current contents of ts. seedCols are the plan's
// HeadSeedCols; run must be an executor for plan (scalar or batched —
// both drive the identical pass). The scan stops at the first witness.
func Rederivable(run Runner, ts TableSource, plan *ndlog.Plan, seedCols []int, head value.Tuple) (bool, error) {
	seed := make([]value.V, len(seedCols))
	for i, c := range seedCols {
		seed[i] = head[c]
	}
	buf := make(value.Tuple, len(head))
	found := false
	_, err := run.Run(ts, nil, seed, func(frame []value.V) error {
		if err := plan.BuildHead(run.Env(), buf); err != nil {
			return err
		}
		if buf.Equal(head) {
			found = true
			return ErrStop
		}
		return nil
	})
	if err != nil && !errors.Is(err, ErrStop) {
		return false, err
	}
	return found, nil
}
