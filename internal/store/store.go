// Package store is the shared tuple-storage layer of the FVN toolchain:
// one table implementation with primary-key replacement, soft-state
// lifetimes, and hash indexes, plus the executor for the compiled join
// plans produced by internal/ndlog analysis. Both the centralized Datalog
// engine and the distributed runtime store tuples and evaluate rule
// bodies through this package, so semi-naive deltas, negation, and
// aggregates have exactly one implementation.
package store

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/value"
)

// PutResult classifies the effect of a keyed Put.
type PutResult uint8

// The Put outcomes.
const (
	PutNoop    PutResult = iota // an identical tuple was already present
	PutNew                      // no tuple with this primary key existed
	PutReplace                  // a different tuple with the same key was replaced
)

// Table is a tuple store. Tuples are unique per primary key (Keys; the
// whole tuple when empty): inserting a second tuple with an existing key
// replaces the first, which is how route updates supersede old routes.
// Scans run in insertion order, deletes are O(1) via a key→position map
// with tombstones compacted lazily, and hash indexes are built on demand
// and maintained incrementally.
type Table struct {
	Name     string
	Arity    int
	Keys     []int   // 0-based primary-key columns; empty = whole tuple
	Lifetime float64 // soft-state lifetime in seconds; 0 = hard state

	byKey   map[string]int // primary key -> position in order
	order   []value.Tuple  // insertion order; nil entries are tombstones
	holes   int
	refresh map[string]float64 // key -> last Put time (soft state only)
	indexes map[string]*Index
	keyBuf  []byte
}

// New returns an empty table. keys are 0-based primary-key columns (nil
// for whole-tuple identity, i.e. set semantics); lifetime > 0 enables
// per-key refresh tracking for soft state.
func New(name string, arity int, keys []int, lifetime float64) *Table {
	t := &Table{
		Name:     name,
		Arity:    arity,
		Keys:     append([]int(nil), keys...),
		Lifetime: lifetime,
		byKey:    map[string]int{},
	}
	if lifetime > 0 {
		t.refresh = map[string]float64{}
	}
	return t
}

func (t *Table) appendKeyOf(b []byte, tup value.Tuple) []byte {
	if len(t.Keys) == 0 {
		return tup.AppendKey(b)
	}
	for i, c := range t.Keys {
		if i > 0 {
			b = append(b, '|')
		}
		b = tup[c].AppendKey(b)
	}
	return b
}

// KeyOf returns the primary-key encoding of tup.
func (t *Table) KeyOf(tup value.Tuple) string {
	t.keyBuf = t.appendKeyOf(t.keyBuf[:0], tup)
	return string(t.keyBuf)
}

// Len returns the number of live tuples.
func (t *Table) Len() int { return len(t.order) - t.holes }

// Put stores tup under its primary key, replacing any previous tuple
// with the same key, and refreshes the key's soft-state timestamp. It
// returns what happened and, for PutReplace and PutNoop, the previous
// tuple.
func (t *Table) Put(tup value.Tuple, now float64) (PutResult, value.Tuple, error) {
	if len(tup) != t.Arity {
		return PutNoop, nil, fmt.Errorf("store: %s expects arity %d, got %v", t.Name, t.Arity, tup)
	}
	t.keyBuf = t.appendKeyOf(t.keyBuf[:0], tup)
	if t.refresh != nil {
		t.refresh[string(t.keyBuf)] = now
	}
	if pos, ok := t.byKey[string(t.keyBuf)]; ok {
		old := t.order[pos]
		if old.Equal(tup) {
			return PutNoop, old, nil
		}
		t.order[pos] = tup
		for _, ix := range t.indexes {
			ix.remove(old)
			ix.add(tup)
		}
		return PutReplace, old, nil
	}
	t.byKey[string(t.keyBuf)] = len(t.order)
	t.order = append(t.order, tup)
	for _, ix := range t.indexes {
		ix.add(tup)
	}
	return PutNew, nil, nil
}

// Insert adds tup with set semantics (for whole-tuple-keyed tables),
// reporting whether it was new. It errors on arity mismatch.
func (t *Table) Insert(tup value.Tuple) (bool, error) {
	res, _, err := t.Put(tup, 0)
	return res == PutNew, err
}

// Delete removes exactly tup, reporting whether it was present. O(1).
func (t *Table) Delete(tup value.Tuple) bool {
	if len(tup) != t.Arity {
		return false
	}
	t.keyBuf = t.appendKeyOf(t.keyBuf[:0], tup)
	pos, ok := t.byKey[string(t.keyBuf)]
	if !ok || !t.order[pos].Equal(tup) {
		return false
	}
	t.removeAt(string(t.keyBuf), pos)
	return true
}

// DeleteByKey removes the tuple stored under the given primary key,
// returning it.
func (t *Table) DeleteByKey(key string) (value.Tuple, bool) {
	pos, ok := t.byKey[key]
	if !ok {
		return nil, false
	}
	old := t.order[pos]
	t.removeAt(key, pos)
	return old, true
}

func (t *Table) removeAt(key string, pos int) {
	old := t.order[pos]
	delete(t.byKey, key)
	if t.refresh != nil {
		delete(t.refresh, key)
	}
	t.order[pos] = nil
	t.holes++
	for _, ix := range t.indexes {
		ix.remove(old)
	}
}

// Get returns the tuple stored under the given primary key.
func (t *Table) Get(key string) (value.Tuple, bool) {
	pos, ok := t.byKey[key]
	if !ok {
		return nil, false
	}
	return t.order[pos], true
}

// Contains reports whether exactly tup is stored.
func (t *Table) Contains(tup value.Tuple) bool {
	if len(tup) != t.Arity {
		return false
	}
	t.keyBuf = t.appendKeyOf(t.keyBuf[:0], tup)
	pos, ok := t.byKey[string(t.keyBuf)]
	return ok && t.order[pos].Equal(tup)
}

// RefreshAt returns the last Put time of the given key (soft state).
func (t *Table) RefreshAt(key string) (float64, bool) {
	v, ok := t.refresh[key]
	return v, ok
}

// All returns the live tuples in insertion order. The slice aliases the
// table's storage: callers must not mutate it, and deletions invalidate
// it at the next All call. Inserting while iterating is safe (appends
// land past the returned window).
func (t *Table) All() []value.Tuple {
	t.compact()
	return t.order
}

// Snapshot returns a fresh copy of the live tuples in insertion order,
// safe to hold across mutations.
func (t *Table) Snapshot() []value.Tuple {
	t.compact()
	return append([]value.Tuple(nil), t.order...)
}

func (t *Table) compact() {
	if t.holes == 0 {
		return
	}
	live := t.order[:0]
	for _, tup := range t.order {
		if tup == nil {
			continue
		}
		t.keyBuf = t.appendKeyOf(t.keyBuf[:0], tup)
		t.byKey[string(t.keyBuf)] = len(live)
		live = append(live, tup)
	}
	t.order = live
	t.holes = 0
}

// Sorted returns the tuples in lexicographic order (for deterministic
// output).
func (t *Table) Sorted() []value.Tuple {
	out := t.Snapshot()
	value.SortTuples(out)
	return out
}

// Clear removes all tuples. Existing Index handles stay valid (they are
// emptied in place).
func (t *Table) Clear() {
	t.byKey = map[string]int{}
	t.order = nil
	t.holes = 0
	if t.refresh != nil {
		t.refresh = map[string]float64{}
	}
	for _, ix := range t.indexes {
		ix.buckets = map[string][]value.Tuple{}
	}
}

// Lookup returns the tuples whose cols project onto vals, via a hash
// index built on first use. With no columns it returns all tuples. The
// result aliases internal storage.
func (t *Table) Lookup(cols []int, vals []value.V) []value.Tuple {
	if len(cols) == 0 {
		return t.All()
	}
	ix := t.IndexOn(cols)
	ix.keyBuf = ix.keyBuf[:0]
	for i, v := range vals {
		if i > 0 {
			ix.keyBuf = append(ix.keyBuf, '|')
		}
		ix.keyBuf = v.AppendKey(ix.keyBuf)
	}
	return ix.buckets[string(ix.keyBuf)]
}

// IndexOn returns the hash index over cols, building it on first use
// from the insertion-order scan (deterministic) and maintaining it
// incrementally afterwards.
func (t *Table) IndexOn(cols []int) *Index {
	var sig strings.Builder
	for i, c := range cols {
		if i > 0 {
			sig.WriteByte(',')
		}
		sig.WriteString(strconv.Itoa(c))
	}
	if ix, ok := t.indexes[sig.String()]; ok {
		return ix
	}
	ix := &Index{
		cols:    append([]int(nil), cols...),
		buckets: map[string][]value.Tuple{},
	}
	for _, tup := range t.All() {
		ix.add(tup)
	}
	if t.indexes == nil {
		t.indexes = map[string]*Index{}
	}
	t.indexes[sig.String()] = ix
	return ix
}

// String renders the table contents deterministically, one tuple per
// line in sorted order.
func (t *Table) String() string {
	var b strings.Builder
	for _, tup := range t.Sorted() {
		b.WriteString(t.Name)
		b.WriteString(tup.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Index is a hash index over a column set.
type Index struct {
	cols    []int
	buckets map[string][]value.Tuple
	keyBuf  []byte
}

// Bucket returns the tuples whose indexed columns encode to key (built
// with value.V.AppendKey, '|'-separated). The non-allocating
// map[string(key)] conversion makes this the zero-allocation probe path.
func (ix *Index) Bucket(key []byte) []value.Tuple { return ix.buckets[string(key)] }

func (ix *Index) add(tup value.Tuple) {
	ix.keyBuf = ix.keyBuf[:0]
	for i, c := range ix.cols {
		if i > 0 {
			ix.keyBuf = append(ix.keyBuf, '|')
		}
		ix.keyBuf = tup[c].AppendKey(ix.keyBuf)
	}
	ix.buckets[string(ix.keyBuf)] = append(ix.buckets[string(ix.keyBuf)], tup)
}

func (ix *Index) remove(tup value.Tuple) {
	ix.keyBuf = ix.keyBuf[:0]
	for i, c := range ix.cols {
		if i > 0 {
			ix.keyBuf = append(ix.keyBuf, '|')
		}
		ix.keyBuf = tup[c].AppendKey(ix.keyBuf)
	}
	b := ix.buckets[string(ix.keyBuf)]
	for i, u := range b {
		if u.Equal(tup) {
			copy(b[i:], b[i+1:])
			b[len(b)-1] = nil
			ix.buckets[string(ix.keyBuf)] = b[:len(b)-1]
			return
		}
	}
}
