// Package store is the shared tuple-storage layer of the FVN toolchain:
// one table implementation with primary-key replacement, soft-state
// lifetimes, and hash indexes, plus the executor for the compiled join
// plans produced by internal/ndlog analysis. Both the centralized Datalog
// engine and the distributed runtime store tuples and evaluate rule
// bodies through this package, so semi-naive deltas, negation, and
// aggregates have exactly one implementation.
package store

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"

	"repro/internal/value"
)

// PutResult classifies the effect of a keyed Put.
type PutResult uint8

// The Put outcomes.
const (
	PutNoop    PutResult = iota // an identical tuple was already present
	PutNew                      // no tuple with this primary key existed
	PutReplace                  // a different tuple with the same key was replaced
)

// Table is a tuple store. Tuples are unique per primary key (Keys; the
// whole tuple when empty): inserting a second tuple with an existing key
// replaces the first, which is how route updates supersede old routes.
// Scans run in insertion order, deletes are O(1) via a key→position map
// with tombstones compacted lazily, and hash indexes are built on demand
// and maintained incrementally.
type Table struct {
	Name     string
	Arity    int
	Keys     []int   // 0-based primary-key columns; empty = whole tuple
	Lifetime float64 // soft-state lifetime in seconds; 0 = hard state

	byKey   map[string]int // primary key -> position in order
	order   []value.Tuple  // insertion order; nil entries are tombstones
	holes   int
	refresh map[string]float64 // key -> last Put time (soft state only)
	indexes map[string]*Index
	support map[string]int32 // whole-tuple key -> derivation support count (see ivm.go)
	keyBuf  []byte

	// pins counts outstanding live scans of this table. While pinned,
	// compact() is deferred (so an All window is never rewritten under an
	// outer iteration — scans skip the nil tombstones instead) and index
	// bucket removal copies instead of shifting in place. Atomic because
	// parallel strata may scan a shared lower-stratum table concurrently.
	pins atomic.Int32
}

// New returns an empty table. keys are 0-based primary-key columns (nil
// for whole-tuple identity, i.e. set semantics); lifetime > 0 enables
// per-key refresh tracking for soft state.
func New(name string, arity int, keys []int, lifetime float64) *Table {
	t := &Table{
		Name:     name,
		Arity:    arity,
		Keys:     append([]int(nil), keys...),
		Lifetime: lifetime,
		byKey:    map[string]int{},
	}
	if lifetime > 0 {
		t.refresh = map[string]float64{}
	}
	return t
}

func (t *Table) appendKeyOf(b []byte, tup value.Tuple) []byte {
	if len(t.Keys) == 0 {
		return tup.AppendKey(b)
	}
	for i, c := range t.Keys {
		if i > 0 {
			b = append(b, '|')
		}
		b = tup[c].AppendKey(b)
	}
	return b
}

// KeyOf returns the primary-key encoding of tup.
func (t *Table) KeyOf(tup value.Tuple) string {
	t.keyBuf = t.appendKeyOf(t.keyBuf[:0], tup)
	return string(t.keyBuf)
}

// Len returns the number of live tuples.
func (t *Table) Len() int { return len(t.order) - t.holes }

// Put stores tup under its primary key, replacing any previous tuple
// with the same key, and refreshes the key's soft-state timestamp. It
// returns what happened and, for PutReplace and PutNoop, the previous
// tuple.
func (t *Table) Put(tup value.Tuple, now float64) (PutResult, value.Tuple, error) {
	if len(tup) != t.Arity {
		return PutNoop, nil, fmt.Errorf("store: %s expects arity %d, got %v", t.Name, t.Arity, tup)
	}
	t.keyBuf = t.appendKeyOf(t.keyBuf[:0], tup)
	if t.refresh != nil {
		t.refresh[string(t.keyBuf)] = now
	}
	if pos, ok := t.byKey[string(t.keyBuf)]; ok {
		old := t.order[pos]
		if old.Equal(tup) {
			return PutNoop, old, nil
		}
		t.order[pos] = tup
		cow := t.pins.Load() != 0
		for _, ix := range t.indexes {
			ix.remove(old, cow)
			ix.add(tup)
		}
		return PutReplace, old, nil
	}
	t.byKey[string(t.keyBuf)] = len(t.order)
	t.order = append(t.order, tup)
	for _, ix := range t.indexes {
		ix.add(tup)
	}
	return PutNew, nil, nil
}

// Insert adds tup with set semantics (for whole-tuple-keyed tables),
// reporting whether it was new. It errors on arity mismatch.
func (t *Table) Insert(tup value.Tuple) (bool, error) {
	res, _, err := t.Put(tup, 0)
	return res == PutNew, err
}

// Delete removes exactly tup, reporting whether it was present. O(1).
func (t *Table) Delete(tup value.Tuple) bool {
	if len(tup) != t.Arity {
		return false
	}
	t.keyBuf = t.appendKeyOf(t.keyBuf[:0], tup)
	pos, ok := t.byKey[string(t.keyBuf)]
	if !ok || !t.order[pos].Equal(tup) {
		return false
	}
	t.removeAt(string(t.keyBuf), pos)
	return true
}

// DeleteByKey removes the tuple stored under the given primary key,
// returning it.
func (t *Table) DeleteByKey(key string) (value.Tuple, bool) {
	pos, ok := t.byKey[key]
	if !ok {
		return nil, false
	}
	old := t.order[pos]
	t.removeAt(key, pos)
	return old, true
}

func (t *Table) removeAt(key string, pos int) {
	old := t.order[pos]
	delete(t.byKey, key)
	if t.refresh != nil {
		delete(t.refresh, key)
	}
	t.order[pos] = nil
	t.holes++
	cow := t.pins.Load() != 0
	for _, ix := range t.indexes {
		ix.remove(old, cow)
	}
}

// Get returns the tuple stored under the given primary key.
func (t *Table) Get(key string) (value.Tuple, bool) {
	pos, ok := t.byKey[key]
	if !ok {
		return nil, false
	}
	return t.order[pos], true
}

// Contains reports whether exactly tup is stored.
func (t *Table) Contains(tup value.Tuple) bool {
	if len(tup) != t.Arity {
		return false
	}
	t.keyBuf = t.appendKeyOf(t.keyBuf[:0], tup)
	pos, ok := t.byKey[string(t.keyBuf)]
	return ok && t.order[pos].Equal(tup)
}

// RefreshAt returns the last Put time of the given key (soft state).
func (t *Table) RefreshAt(key string) (float64, bool) {
	v, ok := t.refresh[key]
	return v, ok
}

// Pin defers compaction (and in-place index bucket shifts) until the
// matching Unpin, making it safe to iterate an All window across
// deletions: deleted entries become nil tombstones in place instead of
// shifting surviving tuples under the iteration. Pins nest. Scanners
// must skip nil entries while a pin may be held.
func (t *Table) Pin() { t.pins.Add(1) }

// Unpin releases one Pin.
func (t *Table) Unpin() { t.pins.Add(-1) }

// All returns the live tuples in insertion order. The slice aliases the
// table's storage: callers must not mutate it, and deletions invalidate
// it at the next unpinned All call. Inserting while iterating is safe
// (appends land past the returned window). While the table is pinned the
// window may contain nil tombstones, which scanners must skip.
func (t *Table) All() []value.Tuple {
	t.compact()
	return t.order
}

// Snapshot returns a fresh copy of the live tuples in insertion order,
// safe to hold across mutations.
func (t *Table) Snapshot() []value.Tuple {
	t.compact()
	if t.holes == 0 {
		return append([]value.Tuple(nil), t.order...)
	}
	// Pinned with outstanding tombstones: copy only the live tuples.
	out := make([]value.Tuple, 0, len(t.order)-t.holes)
	for _, tup := range t.order {
		if tup != nil {
			out = append(out, tup)
		}
	}
	return out
}

func (t *Table) compact() {
	if t.holes == 0 || t.pins.Load() != 0 {
		return
	}
	live := t.order[:0]
	for _, tup := range t.order {
		if tup == nil {
			continue
		}
		t.keyBuf = t.appendKeyOf(t.keyBuf[:0], tup)
		t.byKey[string(t.keyBuf)] = len(live)
		live = append(live, tup)
	}
	t.order = live
	t.holes = 0
}

// Sorted returns the tuples in lexicographic order (for deterministic
// output).
func (t *Table) Sorted() []value.Tuple {
	out := t.Snapshot()
	value.SortTuples(out)
	return out
}

// Digest returns an order-independent fingerprint of the live tuples:
// the XOR of each tuple's splitmix64 content hash. Two tables with the
// same tuple set digest identically regardless of insertion order, so a
// digest comparison is the cheap first step of the anti-entropy
// relation exchange (collisions are as improbable as model-checker
// fingerprint collisions, ~2^-64 per pair).
func (t *Table) Digest() uint64 {
	var d uint64
	for _, tup := range t.order {
		if tup != nil {
			d ^= tup.Hash64(value.HashSeed)
		}
	}
	return d
}

// Clear removes all tuples. Existing Index handles stay valid (they are
// emptied in place).
func (t *Table) Clear() {
	t.byKey = map[string]int{}
	t.order = nil
	t.holes = 0
	t.support = nil
	if t.refresh != nil {
		t.refresh = map[string]float64{}
	}
	for _, ix := range t.indexes {
		ix.clear()
	}
}

// Lookup returns the tuples whose cols project onto vals, via a hash
// index built on first use. With no columns it returns all tuples. The
// result aliases internal storage. The key is built in a local buffer,
// never in shared index state, so concurrent lookups through distinct
// callers cannot serve each other stale keys.
func (t *Table) Lookup(cols []int, vals []value.V) []value.Tuple {
	if len(cols) == 0 {
		return t.All()
	}
	ix := t.IndexOn(cols)
	var arr [64]byte
	b := arr[:0]
	for i, v := range vals {
		if i > 0 {
			b = append(b, '|')
		}
		b = v.AppendKey(b)
	}
	return ix.buckets[string(b)]
}

// indexFor returns the Index registered for cols, creating an empty one
// (no representation built yet) on first use.
func (t *Table) indexFor(cols []int) *Index {
	var sig strings.Builder
	for i, c := range cols {
		if i > 0 {
			sig.WriteByte(',')
		}
		sig.WriteString(strconv.Itoa(c))
	}
	if ix, ok := t.indexes[sig.String()]; ok {
		return ix
	}
	ix := &Index{cols: append([]int(nil), cols...)}
	if t.indexes == nil {
		t.indexes = map[string]*Index{}
	}
	t.indexes[sig.String()] = ix
	return ix
}

// IndexOn returns the string-keyed hash index over cols, building it on
// first use from the insertion-order scan (deterministic) and
// maintaining it incrementally afterwards.
func (t *Table) IndexOn(cols []int) *Index {
	ix := t.indexFor(cols)
	ix.ensureStr(t)
	return ix
}

// HashIndexOn returns the index over cols with its flat fingerprint
// table built, the representation the batched executor probes by uint64
// value hash instead of by encoded string key. Building it does not
// build the string buckets, so a batched-only evaluator never pays for
// them. Must not be called while another goroutine reads the index;
// parallel evaluators build all indexes in a single-threaded prepare
// phase.
func (t *Table) HashIndexOn(cols []int) *Index {
	ix := t.indexFor(cols)
	ix.ensureFlat(t)
	return ix
}

// String renders the table contents deterministically, one tuple per
// line in sorted order.
func (t *Table) String() string {
	var b strings.Builder
	for _, tup := range t.Sorted() {
		b.WriteString(t.Name)
		b.WriteString(tup.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Index is a hash index over a column set, with two lazily built
// representations maintained side by side: string-encoded buckets (the
// scalar executor's probe path) and a flat open-addressing table keyed
// by uint64 value hash (the batched executor's probe path — no key
// encoding, collisions verified against the stored key tuple). Each
// representation is built on first use and maintained incrementally by
// add/remove once built; an index used by only one path never pays for
// the other.
type Index struct {
	cols    []int
	buckets map[string][]value.Tuple // nil until first string probe
	keyBuf  []byte                   // add/remove scratch; never read by probes

	flat     []hEntry // nil until first hashed probe; length is a power of two
	flatLive int      // live entries
	flatUsed int      // live + dead (tombstoned) entries
}

// hEntry is one slot of the flat hash table. Dead entries (emptied by
// removals) keep probe chains intact until the next rebuild.
type hEntry struct {
	hash  uint64
	key   value.Tuple // the indexed column values, for collision checks
	tups  []value.Tuple
	state uint8 // 0 empty, 1 live, 2 dead
}

const (
	hEmpty uint8 = iota
	hLive
	hDead
)

// Bucket returns the tuples whose indexed columns encode to key (built
// with value.V.AppendKey, '|'-separated). The non-allocating
// map[string(key)] conversion makes this the zero-allocation probe path.
func (ix *Index) Bucket(key []byte) []value.Tuple { return ix.buckets[string(key)] }

// HashOf folds the indexed columns of tup into a probe hash.
func (ix *Index) HashOf(tup value.Tuple) uint64 {
	h := value.HashSeed
	for _, c := range ix.cols {
		h = tup[c].Hash64(h)
	}
	return h
}

// FlatBucket returns the tuples whose indexed columns equal kv, where h
// is the value hash of kv (value.HashSeed folded through each element).
// The hit is verified against the stored key, so hash collisions cost an
// extra comparison, never a wrong bucket.
func (ix *Index) FlatBucket(h uint64, kv []value.V) []value.Tuple {
	mask := uint64(len(ix.flat) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		e := &ix.flat[i]
		if e.state == hEmpty {
			return nil
		}
		if e.state == hLive && e.hash == h && keyMatch(e.key, kv) {
			return e.tups
		}
	}
}

// FlatBucket1 is FlatBucket for single-column indexes: the key is one
// value, so the probe skips the key-slice walk.
func (ix *Index) FlatBucket1(h uint64, kv value.V) []value.Tuple {
	mask := uint64(len(ix.flat) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		e := &ix.flat[i]
		if e.state == hEmpty {
			return nil
		}
		if e.state == hLive && e.hash == h && e.key[0].Equal(kv) {
			return e.tups
		}
	}
}

func keyMatch(key value.Tuple, kv []value.V) bool {
	for i := range key {
		if !key[i].Equal(kv[i]) {
			return false
		}
	}
	return true
}

func (ix *Index) ensureStr(t *Table) {
	if ix.buckets != nil {
		return
	}
	ix.buckets = map[string][]value.Tuple{}
	for _, tup := range t.All() {
		if tup == nil {
			continue
		}
		ix.strAdd(tup)
	}
}

func (ix *Index) ensureFlat(t *Table) {
	if ix.flat != nil {
		return
	}
	size := 8
	for size*3 < (t.Len()+1)*4 {
		size *= 2
	}
	ix.flat = make([]hEntry, size)
	for _, tup := range t.All() {
		if tup == nil {
			continue
		}
		ix.flatAdd(tup)
	}
}

func (ix *Index) clear() {
	if ix.buckets != nil {
		ix.buckets = map[string][]value.Tuple{}
	}
	if ix.flat != nil {
		ix.flat = make([]hEntry, 8)
		ix.flatLive, ix.flatUsed = 0, 0
	}
}

func (ix *Index) add(tup value.Tuple) {
	if ix.buckets != nil {
		ix.strAdd(tup)
	}
	if ix.flat != nil {
		ix.flatAdd(tup)
	}
}

// remove drops tup from whichever representations are built. cow forces
// copy-on-write bucket updates: while the owning table is pinned, an
// outstanding scan may hold the bucket slice, so surviving tuples must
// not be shifted under it.
func (ix *Index) remove(tup value.Tuple, cow bool) {
	if ix.buckets != nil {
		ix.strRemove(tup, cow)
	}
	if ix.flat != nil {
		ix.flatRemove(tup, cow)
	}
}

func (ix *Index) strAdd(tup value.Tuple) {
	ix.keyBuf = ix.keyBuf[:0]
	for i, c := range ix.cols {
		if i > 0 {
			ix.keyBuf = append(ix.keyBuf, '|')
		}
		ix.keyBuf = tup[c].AppendKey(ix.keyBuf)
	}
	ix.buckets[string(ix.keyBuf)] = append(ix.buckets[string(ix.keyBuf)], tup)
}

func (ix *Index) strRemove(tup value.Tuple, cow bool) {
	ix.keyBuf = ix.keyBuf[:0]
	for i, c := range ix.cols {
		if i > 0 {
			ix.keyBuf = append(ix.keyBuf, '|')
		}
		ix.keyBuf = tup[c].AppendKey(ix.keyBuf)
	}
	b := ix.buckets[string(ix.keyBuf)]
	for i, u := range b {
		if u.Equal(tup) {
			if cow {
				nb := make([]value.Tuple, 0, len(b)-1)
				nb = append(nb, b[:i]...)
				nb = append(nb, b[i+1:]...)
				ix.buckets[string(ix.keyBuf)] = nb
				return
			}
			copy(b[i:], b[i+1:])
			b[len(b)-1] = nil
			ix.buckets[string(ix.keyBuf)] = b[:len(b)-1]
			return
		}
	}
}

func (ix *Index) flatAdd(tup value.Tuple) {
	if (ix.flatUsed+1)*4 >= len(ix.flat)*3 {
		ix.flatGrow()
	}
	h := ix.HashOf(tup)
	mask := uint64(len(ix.flat) - 1)
	firstDead := -1
	for i := h & mask; ; i = (i + 1) & mask {
		e := &ix.flat[i]
		switch e.state {
		case hEmpty:
			if firstDead >= 0 {
				e = &ix.flat[firstDead]
			} else {
				ix.flatUsed++
			}
			key := make(value.Tuple, len(ix.cols))
			for j, c := range ix.cols {
				key[j] = tup[c]
			}
			e.hash, e.key, e.state = h, key, hLive
			e.tups = append(e.tups[:0], tup)
			ix.flatLive++
			return
		case hDead:
			if firstDead < 0 {
				firstDead = int(i)
			}
		case hLive:
			if e.hash == h && tupMatch(e.key, tup, ix.cols) {
				e.tups = append(e.tups, tup)
				return
			}
		}
	}
}

func (ix *Index) flatRemove(tup value.Tuple, cow bool) {
	h := ix.HashOf(tup)
	mask := uint64(len(ix.flat) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		e := &ix.flat[i]
		if e.state == hEmpty {
			return
		}
		if e.state != hLive || e.hash != h || !tupMatch(e.key, tup, ix.cols) {
			continue
		}
		for j, u := range e.tups {
			if u.Equal(tup) {
				if cow {
					nb := make([]value.Tuple, 0, len(e.tups)-1)
					nb = append(nb, e.tups[:j]...)
					nb = append(nb, e.tups[j+1:]...)
					e.tups = nb
				} else {
					copy(e.tups[j:], e.tups[j+1:])
					e.tups[len(e.tups)-1] = nil
					e.tups = e.tups[:len(e.tups)-1]
				}
				if len(e.tups) == 0 {
					e.state, e.key, e.tups = hDead, nil, nil
					ix.flatLive--
				}
				return
			}
		}
		return
	}
}

func tupMatch(key value.Tuple, tup value.Tuple, cols []int) bool {
	for i, c := range cols {
		if !key[i].Equal(tup[c]) {
			return false
		}
	}
	return true
}

func (ix *Index) flatGrow() {
	old := ix.flat
	size := len(old) * 2
	for size*3 < (ix.flatLive+1)*8 {
		size *= 2
	}
	ix.flat = make([]hEntry, size)
	ix.flatUsed, ix.flatLive = 0, 0
	mask := uint64(size - 1)
	for oi := range old {
		e := &old[oi]
		if e.state != hLive {
			continue
		}
		for i := e.hash & mask; ; i = (i + 1) & mask {
			n := &ix.flat[i]
			if n.state != hEmpty {
				continue
			}
			*n = *e
			ix.flatUsed++
			ix.flatLive++
			break
		}
	}
}
