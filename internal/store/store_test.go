package store

import (
	"testing"

	"repro/internal/ndlog"
	"repro/internal/value"
)

func tup(vs ...int64) value.Tuple {
	t := make(value.Tuple, len(vs))
	for i, v := range vs {
		t[i] = value.Int(v)
	}
	return t
}

func TestPutReplaceNoop(t *testing.T) {
	tb := New("r", 2, []int{0}, 0) // keyed on column 0
	if res, _, _ := tb.Put(tup(1, 10), 0); res != PutNew {
		t.Fatalf("first put = %v, want PutNew", res)
	}
	res, old, _ := tb.Put(tup(1, 20), 0)
	if res != PutReplace || !old.Equal(tup(1, 10)) {
		t.Fatalf("replace = %v old=%v", res, old)
	}
	if res, _, _ := tb.Put(tup(1, 20), 0); res != PutNoop {
		t.Fatalf("identical re-put = %v, want PutNoop", res)
	}
	if tb.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (key replacement)", tb.Len())
	}
	got, _ := tb.Get(tb.KeyOf(tup(1, 20)))
	if !got.Equal(tup(1, 20)) {
		t.Fatalf("Get after replace = %v", got)
	}
	if _, _, err := tb.Put(tup(1), 0); err == nil {
		t.Fatal("arity mismatch not rejected")
	}
}

// TestDigest pins the relation-fingerprint semantics the anti-entropy
// digest exchange relies on: a pure content hash — insertion order,
// tombstones, and pinned-iteration state must never leak into it.
func TestDigest(t *testing.T) {
	if d := New("d", 2, nil, 0).Digest(); d != 0 {
		t.Fatalf("empty table digest = %#x, want 0", d)
	}

	// Order independence: the same tuple set inserted in opposite orders
	// digests identically.
	a, b := New("d", 2, nil, 0), New("d", 2, nil, 0)
	tups := []value.Tuple{tup(1, 10), tup(2, 20), tup(3, 30)}
	for _, x := range tups {
		a.Insert(x)
	}
	for i := len(tups) - 1; i >= 0; i-- {
		b.Insert(tups[i])
	}
	if a.Digest() != b.Digest() {
		t.Fatalf("insertion order leaks into digest: %#x vs %#x", a.Digest(), b.Digest())
	}

	// Content sensitivity and delete round-trip: removing a tuple changes
	// the digest, re-adding it restores the original — even while a pin
	// holds compaction back, so the tombstone is still physically present.
	orig := a.Digest()
	a.Pin()
	defer a.Unpin()
	if !a.Delete(tup(2, 20)) {
		t.Fatal("delete failed")
	}
	if a.Digest() == orig {
		t.Fatal("digest unchanged by delete")
	}
	a.Insert(tup(2, 20))
	if got := a.Digest(); got != orig {
		t.Fatalf("delete+reinsert digest = %#x, want original %#x", got, orig)
	}
}

func TestDeleteTombstonesAndCompaction(t *testing.T) {
	tb := New("s", 1, nil, 0)
	for i := int64(0); i < 100; i++ {
		if _, err := tb.Insert(tup(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Delete every other tuple: O(1) per delete, tombstones accumulate
	// until the next scan compacts them.
	for i := int64(0); i < 100; i += 2 {
		if !tb.Delete(tup(i)) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if tb.Delete(tup(0)) {
		t.Fatal("double delete succeeded")
	}
	if tb.Len() != 50 {
		t.Fatalf("Len = %d, want 50", tb.Len())
	}
	all := tb.All()
	if len(all) != 50 {
		t.Fatalf("All after compaction = %d tuples, want 50", len(all))
	}
	// Insertion order survives compaction, and lookups still work.
	for i, tp := range all {
		if want := int64(2*i + 1); tp[0].I != want {
			t.Fatalf("All[%d] = %v, want (%d)", i, tp, want)
		}
	}
	if !tb.Contains(tup(51)) || tb.Contains(tup(50)) {
		t.Fatal("Contains wrong after compaction")
	}
	// Delete-then-reinsert round-trips.
	if _, err := tb.Insert(tup(0)); err != nil {
		t.Fatal(err)
	}
	if !tb.Contains(tup(0)) || tb.Len() != 51 {
		t.Fatal("reinsert after delete failed")
	}
}

func TestDeleteByKeyAndRefresh(t *testing.T) {
	tb := New("soft", 2, []int{0}, 5.0)
	tb.Put(tup(1, 10), 3.0)
	if at, ok := tb.RefreshAt(tb.KeyOf(tup(1, 10))); !ok || at != 3.0 {
		t.Fatalf("RefreshAt = %v,%v want 3,true", at, ok)
	}
	// An identical re-insert is a PutNoop but still refreshes soft state.
	if res, _, _ := tb.Put(tup(1, 10), 7.0); res != PutNoop {
		t.Fatal("expected noop")
	}
	if at, _ := tb.RefreshAt(tb.KeyOf(tup(1, 10))); at != 7.0 {
		t.Fatalf("noop re-insert did not refresh: %v", at)
	}
	old, ok := tb.DeleteByKey(tb.KeyOf(tup(1, 99))) // key = col 0 only
	if !ok || !old.Equal(tup(1, 10)) {
		t.Fatalf("DeleteByKey = %v,%v", old, ok)
	}
	if _, ok := tb.RefreshAt(tb.KeyOf(tup(1, 10))); ok {
		t.Fatal("refresh entry survived delete")
	}
}

func TestIndexesMaintainedAcrossMutations(t *testing.T) {
	tb := New("ix", 2, []int{0}, 0)
	tb.Put(tup(1, 7), 0)
	tb.Put(tup(2, 7), 0)
	tb.Put(tup(3, 8), 0)
	if got := len(tb.Lookup([]int{1}, []value.V{value.Int(7)})); got != 2 {
		t.Fatalf("lookup col1=7: %d, want 2", got)
	}
	tb.Put(tup(1, 8), 0) // replace moves 1 from bucket 7 to bucket 8
	if got := len(tb.Lookup([]int{1}, []value.V{value.Int(7)})); got != 1 {
		t.Fatalf("after replace, col1=7: %d, want 1", got)
	}
	if got := len(tb.Lookup([]int{1}, []value.V{value.Int(8)})); got != 2 {
		t.Fatalf("after replace, col1=8: %d, want 2", got)
	}
	tb.Delete(tup(3, 8))
	if got := len(tb.Lookup([]int{1}, []value.V{value.Int(8)})); got != 1 {
		t.Fatalf("after delete, col1=8: %d, want 1", got)
	}
	// Clear keeps previously handed-out Index handles valid.
	ix := tb.IndexOn([]int{1})
	tb.Clear()
	if tb.Len() != 0 {
		t.Fatal("Clear left tuples")
	}
	tb.Put(tup(5, 9), 0)
	if got := len(ix.Bucket([]byte(value.Int(9).Key()))); got != 1 {
		t.Fatalf("stale index handle after Clear: %d, want 1", got)
	}
}

func TestSnapshotIsStable(t *testing.T) {
	tb := New("snap", 1, nil, 0)
	tb.Insert(tup(1))
	tb.Insert(tup(2))
	snap := tb.Snapshot()
	tb.Delete(tup(1))
	tb.Insert(tup(3))
	if len(snap) != 2 || !snap[0].Equal(tup(1)) || !snap[1].Equal(tup(2)) {
		t.Fatalf("snapshot mutated: %v", snap)
	}
}

func TestShufflerDeterministic(t *testing.T) {
	ts := make([]value.Tuple, 20)
	for i := range ts {
		ts[i] = tup(int64(i))
	}
	perm := func(seed uint64) []value.Tuple {
		var buf []value.Tuple
		return append([]value.Tuple(nil), NewShuffler(seed).Shuffle(ts, &buf)...)
	}
	a, b := perm(7), perm(7)
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("same seed, different permutation at %d", i)
		}
	}
	c := perm(8)
	same := true
	for i := range a {
		if !a[i].Equal(c[i]) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical permutations")
	}
	// The input slice itself must not be mutated (scans iterate it live).
	for i := range ts {
		if ts[i][0].I != int64(i) {
			t.Fatal("Shuffle mutated its input")
		}
	}
}

// execSource adapts a map to the executor's TableSource.
type execSource map[string]*Table

func (s execSource) Table(pred string) *Table { return s[pred] }

// TestExecRunsCompiledPlan drives the executor directly over a compiled
// plan: a two-atom join with an assignment, a filter, and a negation.
func TestExecRunsCompiledPlan(t *testing.T) {
	prog := ndlog.MustParse("x", `
materialize(e, infinity, infinity, keys(1,2)).
materialize(block, infinity, infinity, keys(1,2)).
materialize(two, infinity, infinity, keys(1,2,3)).
r1 two(@A,C,S) :- e(@A,B), e(@B,C), S=1+1, A != C, !block(@A,C).
`)
	an, err := ndlog.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	e := New("e", 2, nil, 0)
	for _, pair := range [][2]string{{"a", "b"}, {"b", "c"}, {"b", "a"}, {"c", "d"}} {
		e.Insert(value.Tuple{value.Addr(pair[0]), value.Addr(pair[1])})
	}
	block := New("block", 2, nil, 0)
	block.Insert(value.Tuple{value.Addr("b"), value.Addr("d")})
	src := execSource{"e": e, "block": block}

	r := prog.Rules[0]
	plan := an.Plans[r].Full
	x := NewExec(plan)
	var got []string
	emit := func([]value.V) error {
		out := make(value.Tuple, len(plan.HeadExprs))
		if err := plan.BuildHead(x.Env(), out); err != nil {
			return err
		}
		got = append(got, out.String())
		return nil
	}
	probes, err := x.Run(src, nil, nil, emit)
	if err != nil {
		t.Fatal(err)
	}
	if probes == 0 {
		t.Fatal("no probes counted")
	}
	// a->b->c yes; b->c->d blocked; c->d nothing; a->b->a fails A != C;
	// b->a->b fails A != C.
	want := []string{"(a,c,2)"}
	if len(got) != len(want) || got[0] != want[0] {
		t.Fatalf("emissions = %v, want %v", got, want)
	}

	// The same rule through its delta plan: only joins seeded by the
	// delta tuple fire.
	dplan := an.Plans[r].Delta[0]
	dx := NewExec(dplan)
	got = nil
	demit := func([]value.V) error {
		out := make(value.Tuple, len(dplan.HeadExprs))
		if err := dplan.BuildHead(dx.Env(), out); err != nil {
			return err
		}
		got = append(got, out.String())
		return nil
	}
	if _, err := dx.Run(src, []value.Tuple{{value.Addr("a"), value.Addr("b")}}, nil, demit); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "(a,c,2)" {
		t.Fatalf("delta emissions = %v, want [(a,c,2)]", got)
	}
}
