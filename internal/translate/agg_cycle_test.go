package translate

import (
	"strings"
	"testing"

	"repro/internal/ndlog"
)

// TestAggInCycleHasNoInductiveTranslation documents the boundary between
// the two verification routes in FVN: a program whose aggregate sits on a
// recursive cycle (BGP's selection-feeds-advertisement) has no stratified
// least-fixpoint reading, so the inductive translation is rejected —
// positivity fails on the generated universal quantifier — and the
// linear-logic transition-system route (§4.2/§4.3) is the one to use.
func TestAggInCycleHasNoInductiveTranslation(t *testing.T) {
	src := `
materialize(best, infinity, infinity, keys(1,2)).
b1 cand(@U,D,C) :- link(@U,W,C1), best(@W,D,C2), C=C1+C2.
b2 cand(@U,D,C) :- link(@U,D,C).
b3 best(@U,D,min<C>) :- cand(@U,D,C).
`
	prog := ndlog.MustParse("bgp-cycle", src)
	an, err := ndlog.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	if !an.AggInCycle {
		t.Fatal("cycle not detected")
	}
	_, err = ToLogic(an, Options{})
	if err == nil {
		t.Fatal("agg-in-cycle program translated to a (bogus) inductive theory")
	}
	if !strings.Contains(err.Error(), "negative occurrence") {
		t.Errorf("unexpected error: %v", err)
	}
}

// The stratified core of the same protocol (one round against an
// uninterpreted previous selection) translates fine — the same maneuver
// component.NewBGPModelOneRound uses.
func TestOneRoundVariantTranslates(t *testing.T) {
	src := `
b1 cand(@U,D,C) :- link(@U,W,C1), prevBest(@W,D,C2), C=C1+C2.
b2 cand(@U,D,C) :- link(@U,D,C).
b3 best(@U,D,min<C>) :- cand(@U,D,C).
`
	prog := ndlog.MustParse("bgp-round", src)
	an, err := ndlog.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	if an.AggInCycle {
		t.Fatal("one-round variant wrongly flagged")
	}
	th, err := ToLogic(an, Options{TheoremsForAggregates: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := th.TheoremByName("bestStrong"); !ok {
		t.Error("optimality theorem not generated for the one-round selection")
	}
}
