// Package translate implements the property-preserving translations at the
// heart of FVN (Figure 1 of the paper): NDlog programs to logical
// specifications for theorem proving (arc 4, following Wang et al. [22]),
// automatic generation of optimality theorems for min/max aggregates, and
// the soft-state to hard-state rule rewrite of §4.2.
package translate

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/ndlog"
)

// Options controls the NDlog-to-logic translation.
type Options struct {
	// IncludeFacts makes ground facts of the program available as axioms.
	IncludeFacts bool
	// TheoremsForAggregates generates, for every min/max aggregate rule, the
	// strong-optimality theorem in the style of bestPathStrong (§3.1).
	TheoremsForAggregates bool
}

// ToLogic translates an analyzed NDlog program into a logical theory:
// every derived predicate becomes an inductive definition whose clauses
// are the program's rules, exploiting the proof-theoretic semantics of
// Datalog (the translation of §3.1). Aggregate rules with min/max become
// the first-order axiomatization "a witness exists, and no better witness
// exists". count/sum aggregates have no first-order axiomatization and are
// rejected — the paper's position is to verify such programs by model
// checking instead (§4.3).
func ToLogic(an *ndlog.Analysis, opts Options) (*logic.Theory, error) {
	th := logic.NewTheory(an.Prog.Name)
	tr := &translator{an: an, sorts: inferSorts(an)}

	// Group rules by head predicate, preserving program order.
	order := []string{}
	byHead := map[string][]*ndlog.Rule{}
	for _, r := range an.Prog.Rules {
		if r.Delete {
			return nil, fmt.Errorf("translate: delete rule %s has no inductive translation; use the linear-logic transition semantics (internal/linear)", r.Label)
		}
		if _, ok := byHead[r.Head.Pred]; !ok {
			order = append(order, r.Head.Pred)
		}
		byHead[r.Head.Pred] = append(byHead[r.Head.Pred], r)
	}

	for _, pred := range order {
		rules := byHead[pred]
		def, err := tr.translatePred(pred, rules)
		if err != nil {
			return nil, err
		}
		th.AddInductive(def)
		if opts.TheoremsForAggregates {
			if thm, ok, err := tr.aggOptimalityTheorem(pred, rules); err != nil {
				return nil, err
			} else if ok {
				th.AddTheorem(thm.Name, thm.Goal)
			}
		}
	}

	if opts.IncludeFacts {
		for i, f := range an.Prog.Facts {
			args := make([]logic.Term, len(f.Args))
			for j, v := range f.Args {
				args[j] = logic.Const{Val: v}
			}
			th.AddAxiom(fmt.Sprintf("fact_%s_%d", f.Pred, i+1), logic.Pred{Name: f.Pred, Args: args})
		}
	}

	if err := th.Validate(); err != nil {
		return nil, fmt.Errorf("translate: generated theory invalid: %w", err)
	}
	// Hash-cons the generated formulas up front: every consumer (prover,
	// obligation pipeline) then works on shared interned nodes.
	logic.InternTheory(th)
	return th, nil
}

type translator struct {
	an    *ndlog.Analysis
	sorts map[string][]logic.Sort // predicate -> per-argument sort
}

// paramSort returns the inferred sort for argument i of pred.
func (tr *translator) paramSort(pred string, i int) logic.Sort {
	if s, ok := tr.sorts[pred]; ok && i < len(s) && s[i] != "" {
		return s[i]
	}
	return logic.SortAny
}

// translatePred builds the inductive definition for pred from its rules.
func (tr *translator) translatePred(pred string, rules []*ndlog.Rule) (*logic.Inductive, error) {
	// Aggregate predicates translate specially.
	if agg, _ := rules[0].Head.HeadAgg(); agg != nil {
		if len(rules) > 1 {
			return nil, fmt.Errorf("translate: aggregate predicate %s defined by %d rules; one supported", pred, len(rules))
		}
		return tr.translateAggregate(rules[0])
	}

	arity := tr.an.Arity[pred]
	params := tr.chooseParams(pred, arity, rules)

	var clauses []logic.Formula
	for _, r := range rules {
		clause, err := tr.translateRule(r, params)
		if err != nil {
			return nil, err
		}
		clauses = append(clauses, clause)
	}
	return &logic.Inductive{Name: pred, Params: params, Body: logic.Disj(clauses...)}, nil
}

// chooseParams picks parameter names: the head variable names when all
// rules agree on a distinct variable per position, otherwise synthetic
// names A1..An.
func (tr *translator) chooseParams(pred string, arity int, rules []*ndlog.Rule) []logic.Var {
	names := make([]string, arity)
	agree := true
	for i := 0; i < arity; i++ {
		var name string
		for _, r := range rules {
			v, ok := r.Head.Args[i].(ndlog.VarE)
			if !ok {
				agree = false
				break
			}
			if name == "" {
				name = v.Name
			} else if name != v.Name {
				agree = false
				break
			}
		}
		if !agree {
			break
		}
		names[i] = name
	}
	// Names must also be pairwise distinct.
	if agree {
		seen := map[string]bool{}
		for _, n := range names {
			if n == "" || seen[n] {
				agree = false
				break
			}
			seen[n] = true
		}
	}
	params := make([]logic.Var, arity)
	for i := 0; i < arity; i++ {
		name := fmt.Sprintf("A%d", i+1)
		if agree {
			name = names[i]
		}
		params[i] = logic.Var{Name: name, Sort: tr.paramSort(pred, i)}
	}
	return params
}

// translateRule converts one rule into a clause over the given parameters:
// ∃(body vars) . (param_i = head_i) ∧ body. When the head argument i is
// exactly the parameter variable, the equation is omitted and the body
// variable is identified with the parameter.
func (tr *translator) translateRule(r *ndlog.Rule, params []logic.Var) (logic.Formula, error) {
	// Rename body variables that collide with parameter names but are NOT
	// the corresponding head variable? Simpler and sound: rename every body
	// variable to itself unless it equals a param name used at a different
	// position. We identify head vars with params positionally.
	rename := map[string]string{}
	paramByName := map[string]int{}
	for i, p := range params {
		paramByName[p.Name] = i
	}
	var eqs []logic.Formula
	identified := map[string]bool{} // body var identified with a param
	for i, arg := range r.Head.Args {
		if v, ok := arg.(ndlog.VarE); ok {
			if params[i].Name == v.Name {
				identified[v.Name] = true
				continue
			}
			// Head var with a different param name: identify by renaming.
			if _, taken := rename[v.Name]; !taken && !identified[v.Name] {
				rename[v.Name] = params[i].Name
				identified[v.Name] = true
				continue
			}
		}
		// Computed or repeated head argument: add an equation.
		t, err := tr.exprToTerm(arg, rename)
		if err != nil {
			return nil, fmt.Errorf("translate: rule %s: %w", r.Label, err)
		}
		eqs = append(eqs, logic.Eq{L: params[i], R: t})
	}

	// Collect body variables that are not parameters: they are
	// existentially quantified.
	bodyVars := map[string]bool{}
	for _, l := range r.Body {
		if l.Atom != nil {
			for v := range ndlog.AtomVars(l.Atom) {
				bodyVars[v] = true
			}
		} else {
			set := map[string]bool{}
			ndlog.Vars(l.Expr, set)
			for v := range set {
				bodyVars[v] = true
			}
		}
	}
	var exVars []logic.Var
	for _, name := range sortedNames(bodyVars) {
		target := name
		if rn, ok := rename[name]; ok {
			target = rn
		}
		if _, isParam := paramByName[target]; isParam {
			continue
		}
		exVars = append(exVars, logic.Var{Name: target, Sort: tr.sortOfVar(r, name)})
	}

	var conj []logic.Formula
	conj = append(conj, eqs...)
	for _, l := range r.Body {
		f, err := tr.literalToFormula(l, rename)
		if err != nil {
			return nil, fmt.Errorf("translate: rule %s: %w", r.Label, err)
		}
		conj = append(conj, f)
	}
	return logic.Exist(exVars, logic.Conj(conj...)), nil
}

// literalToFormula converts a body literal.
func (tr *translator) literalToFormula(l ndlog.Literal, rename map[string]string) (logic.Formula, error) {
	if l.Atom != nil {
		args := make([]logic.Term, len(l.Atom.Args))
		for i, a := range l.Atom.Args {
			t, err := tr.exprToTerm(a, rename)
			if err != nil {
				return nil, err
			}
			args[i] = t
		}
		p := logic.Pred{Name: l.Atom.Pred, Args: args}
		if l.Neg {
			return logic.Not{F: p}, nil
		}
		return p, nil
	}
	return tr.exprToFormula(l.Expr, rename)
}

// exprToFormula converts a boolean NDlog expression into a formula.
func (tr *translator) exprToFormula(e ndlog.Expr, rename map[string]string) (logic.Formula, error) {
	be, ok := e.(ndlog.BinE)
	if !ok {
		// A bare boolean-valued term: t = TRUE.
		t, err := tr.exprToTerm(e, rename)
		if err != nil {
			return nil, err
		}
		return logic.Eq{L: t, R: logic.BoolT(true)}, nil
	}
	switch be.Op {
	case "&&":
		l, err := tr.exprToFormula(be.L, rename)
		if err != nil {
			return nil, err
		}
		r, err := tr.exprToFormula(be.R, rename)
		if err != nil {
			return nil, err
		}
		return logic.Conj(l, r), nil
	case "||":
		l, err := tr.exprToFormula(be.L, rename)
		if err != nil {
			return nil, err
		}
		r, err := tr.exprToFormula(be.R, rename)
		if err != nil {
			return nil, err
		}
		return logic.Disj(l, r), nil
	case "=", "==":
		l, err := tr.exprToTerm(be.L, rename)
		if err != nil {
			return nil, err
		}
		r, err := tr.exprToTerm(be.R, rename)
		if err != nil {
			return nil, err
		}
		return logic.Eq{L: l, R: r}, nil
	case "!=":
		l, err := tr.exprToTerm(be.L, rename)
		if err != nil {
			return nil, err
		}
		r, err := tr.exprToTerm(be.R, rename)
		if err != nil {
			return nil, err
		}
		return logic.Not{F: logic.Eq{L: l, R: r}}, nil
	case "<", "<=", ">", ">=":
		l, err := tr.exprToTerm(be.L, rename)
		if err != nil {
			return nil, err
		}
		r, err := tr.exprToTerm(be.R, rename)
		if err != nil {
			return nil, err
		}
		return logic.Cmp{Op: be.Op, L: l, R: r}, nil
	default:
		t, err := tr.exprToTerm(e, rename)
		if err != nil {
			return nil, err
		}
		return logic.Eq{L: t, R: logic.BoolT(true)}, nil
	}
}

// exprToTerm converts an NDlog expression to a logical term.
func (tr *translator) exprToTerm(e ndlog.Expr, rename map[string]string) (logic.Term, error) {
	switch x := e.(type) {
	case ndlog.VarE:
		name := x.Name
		if rn, ok := rename[name]; ok {
			name = rn
		}
		return logic.V(name), nil
	case ndlog.LitE:
		return logic.Const{Val: x.Val}, nil
	case ndlog.CallE:
		args := make([]logic.Term, len(x.Args))
		for i, a := range x.Args {
			t, err := tr.exprToTerm(a, rename)
			if err != nil {
				return nil, err
			}
			args[i] = t
		}
		return logic.App{Fn: x.Fn, Args: args}, nil
	case ndlog.BinE:
		l, err := tr.exprToTerm(x.L, rename)
		if err != nil {
			return nil, err
		}
		r, err := tr.exprToTerm(x.R, rename)
		if err != nil {
			return nil, err
		}
		return logic.App{Fn: x.Op, Args: []logic.Term{l, r}}, nil
	case ndlog.AggE:
		return nil, fmt.Errorf("aggregate %s in term position", x)
	}
	return nil, fmt.Errorf("unknown expression")
}

// translateAggregate builds the axiomatization of a min/max rule:
//
//	r3 bestPathCost(@S,D,min<C>) :- path(@S,D,P,C).
//
// becomes
//
//	bestPathCost(S,D,C): INDUCTIVE bool =
//	  (EXISTS P: path(S,D,P,C)) AND
//	  (FORALL P',C': path(S,D,P',C') => C <= C')
func (tr *translator) translateAggregate(r *ndlog.Rule) (*logic.Inductive, error) {
	agg, aggIdx := r.Head.HeadAgg()
	var op string
	switch agg.Kind {
	case "min":
		op = "<="
	case "max":
		op = ">="
	default:
		return nil, fmt.Errorf("translate: rule %s: %s aggregates have no first-order axiomatization; verify via model checking (§4.3)", r.Label, agg.Kind)
	}

	pred := r.Head.Pred
	arity := tr.an.Arity[pred]
	params := make([]logic.Var, arity)
	for i := 0; i < arity; i++ {
		if i == aggIdx {
			params[i] = logic.Var{Name: agg.Arg, Sort: tr.paramSort(pred, i)}
			if params[i].Sort == logic.SortAny {
				params[i].Sort = logic.SortMetric
			}
			continue
		}
		if v, ok := r.Head.Args[i].(ndlog.VarE); ok {
			params[i] = logic.Var{Name: v.Name, Sort: tr.paramSort(pred, i)}
		} else {
			params[i] = logic.Var{Name: fmt.Sprintf("A%d", i+1), Sort: tr.paramSort(pred, i)}
		}
	}

	witness, wVars, err := tr.aggBody(r, params, aggIdx, "")
	if err != nil {
		return nil, err
	}
	bound, bVars, err := tr.aggBody(r, params, aggIdx, "_0")
	if err != nil {
		return nil, err
	}
	aggParam := params[aggIdx]
	primedAgg := logic.Var{Name: agg.Arg + "_0", Sort: aggParam.Sort}
	universal := logic.All(append(bVars, primedAgg), logic.Implies{
		L: bound,
		R: logic.Cmp{Op: op, L: aggParam, R: primedAgg},
	})
	body := logic.Conj(logic.Exist(wVars, witness), universal)
	return &logic.Inductive{Name: pred, Params: params, Body: body}, nil
}

// aggBody builds the rule body as a formula over the group-by parameters,
// with the aggregated variable mapped to agg.Arg+suffix and all other
// non-parameter body variables suffixed for freshness. It returns the
// formula and the variables to quantify (excluding the aggregate variable).
func (tr *translator) aggBody(r *ndlog.Rule, params []logic.Var, aggIdx int, suffix string) (logic.Formula, []logic.Var, error) {
	agg, _ := r.Head.HeadAgg()
	paramNames := map[string]bool{}
	for i, p := range params {
		if i == aggIdx {
			continue
		}
		paramNames[p.Name] = true
	}
	rename := map[string]string{}
	// Group-by head vars keep their names; everything else (including the
	// aggregated variable) gets the suffix.
	bodyVars := map[string]bool{}
	for _, l := range r.Body {
		if l.Atom != nil {
			for v := range ndlog.AtomVars(l.Atom) {
				bodyVars[v] = true
			}
		} else {
			set := map[string]bool{}
			ndlog.Vars(l.Expr, set)
			for v := range set {
				bodyVars[v] = true
			}
		}
	}
	var quantVars []logic.Var
	for _, name := range sortedNames(bodyVars) {
		if paramNames[name] {
			continue
		}
		renamed := name + suffix
		rename[name] = renamed
		if name == agg.Arg {
			continue // handled by caller
		}
		quantVars = append(quantVars, logic.Var{Name: renamed, Sort: tr.sortOfVar(r, name)})
	}
	var conj []logic.Formula
	for _, l := range r.Body {
		f, err := tr.literalToFormula(l, rename)
		if err != nil {
			return nil, nil, err
		}
		conj = append(conj, f)
	}
	return logic.Conj(conj...), quantVars, nil
}

// aggOptimalityTheorem generates, for a min/max aggregate predicate, the
// strong-optimality theorem of §3.1: no body witness beats the aggregate
// value.
func (tr *translator) aggOptimalityTheorem(pred string, rules []*ndlog.Rule) (logic.Theorem, bool, error) {
	agg, aggIdx := rules[0].Head.HeadAgg()
	if agg == nil || (agg.Kind != "min" && agg.Kind != "max") {
		return logic.Theorem{}, false, nil
	}
	def, err := tr.translateAggregate(rules[0])
	if err != nil {
		return logic.Theorem{}, false, err
	}
	params := def.Params
	strictOp := "<"
	if agg.Kind == "max" {
		strictOp = ">"
	}
	better, bVars, err := tr.aggBody(rules[0], params, aggIdx, "_b")
	if err != nil {
		return logic.Theorem{}, false, err
	}
	aggParam := params[aggIdx]
	betterAgg := logic.Var{Name: agg.Arg + "_b", Sort: aggParam.Sort}
	goal := logic.Forall{
		Vars: params,
		Body: logic.Implies{
			L: logic.Pred{Name: pred, Args: varsToTerms(params)},
			R: logic.Not{F: logic.Exist(append(bVars, betterAgg), logic.Conj(
				better,
				logic.Cmp{Op: strictOp, L: betterAgg, R: aggParam},
			))},
		},
	}
	return logic.Theorem{Name: pred + "Strong", Goal: goal}, true, nil
}

func varsToTerms(vs []logic.Var) []logic.Term {
	out := make([]logic.Term, len(vs))
	for i, v := range vs {
		out[i] = v
	}
	return out
}

func sortedNames(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	// Deterministic order.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
