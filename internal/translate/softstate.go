package translate

import (
	"fmt"

	"repro/internal/ndlog"
)

// RewriteSoftState implements the soft-state to hard-state rule rewrite of
// §4.2 (from Wang et al. [22]): every predicate declared with a finite
// lifetime L gains an explicit timestamp attribute, derivations stamp the
// current clock time, and every body occurrence gains the freshness
// constraint Now - Ts <= L. The resulting program is pure hard-state
// Datalog and can be translated to logic with ToLogic — at the cost the
// paper calls "heavy-weight and cumbersome to prove", which motivates the
// linear-logic semantics of internal/linear.
//
// The rewritten program reads the wall clock from a clock(@N, Now)
// predicate that the runtime (or the test harness) must populate.
func RewriteSoftState(prog *ndlog.Program) (*ndlog.Program, error) {
	soft := map[string]float64{}
	for _, m := range prog.Materialized {
		if !m.Lifetime.Infinite {
			soft[m.Pred] = m.Lifetime.Seconds
		}
	}
	if len(soft) == 0 {
		return prog, nil
	}

	out := &ndlog.Program{Name: prog.Name + "_hard"}
	// Hard-state declarations: soft tables become hard tables with an
	// extra timestamp column appended.
	for _, m := range prog.Materialized {
		nm := m
		nm.Lifetime = ndlog.Lifetime{Infinite: true}
		out.Materialized = append(out.Materialized, nm)
	}

	freshVar := 0
	gensym := func(base string) string {
		freshVar++
		return fmt.Sprintf("%s_ts%d", base, freshVar)
	}

	for _, r := range prog.Rules {
		nr := &ndlog.Rule{Label: r.Label, Delete: r.Delete}

		// Locate the clock: the rule needs the current time if it derives
		// into or reads from a soft table.
		needsClock := false
		if _, ok := soft[r.Head.Pred]; ok {
			needsClock = true
		}
		for _, l := range r.Body {
			if l.Atom != nil {
				if _, ok := soft[l.Atom.Pred]; ok {
					needsClock = true
				}
			}
		}

		// Head: append Now as the timestamp of fresh derivations.
		head := ndlog.Atom{Pred: r.Head.Pred, Loc: r.Head.Loc}
		head.Args = append(head.Args, r.Head.Args...)
		if _, ok := soft[r.Head.Pred]; ok {
			head.Args = append(head.Args, ndlog.VarE{Name: "Now"})
		}
		nr.Head = head

		// Clock atom first, at the head's location variable.
		if needsClock {
			locVar := "Now_loc"
			if r.Head.Loc >= 0 {
				if v, ok := r.Head.Args[r.Head.Loc].(ndlog.VarE); ok {
					locVar = v.Name
				}
			}
			nr.Body = append(nr.Body, ndlog.Literal{Atom: &ndlog.Atom{
				Pred: "clock",
				Loc:  0,
				Args: []ndlog.Expr{ndlog.VarE{Name: locVar, Loc: true}, ndlog.VarE{Name: "Now"}},
			}})
		}

		for _, l := range r.Body {
			if l.Atom == nil {
				nr.Body = append(nr.Body, l)
				continue
			}
			lifetime, ok := soft[l.Atom.Pred]
			if !ok {
				nr.Body = append(nr.Body, l)
				continue
			}
			ts := gensym(l.Atom.Pred)
			atom := ndlog.Atom{Pred: l.Atom.Pred, Loc: l.Atom.Loc}
			atom.Args = append(atom.Args, l.Atom.Args...)
			atom.Args = append(atom.Args, ndlog.VarE{Name: ts})
			nr.Body = append(nr.Body, ndlog.Literal{Atom: &atom, Neg: l.Neg})
			if !l.Neg {
				// Freshness: Now - Ts <= lifetime.
				nr.Body = append(nr.Body, ndlog.Literal{Expr: ndlog.BinE{
					Op: "<=",
					L:  ndlog.BinE{Op: "-", L: ndlog.VarE{Name: "Now"}, R: ndlog.VarE{Name: ts}},
					R:  ndlog.LitE{Val: intVal(lifetime)},
				}})
			}
		}
		out.Rules = append(out.Rules, nr)
	}

	// Facts into soft tables get timestamp 0.
	for _, f := range prog.Facts {
		nf := f
		if _, ok := soft[f.Pred]; ok {
			nf.Args = append(append(nf.Args[:0:0], f.Args...), intZero)
		}
		out.Facts = append(out.Facts, nf)
	}
	return out, nil
}
