package translate

import (
	"repro/internal/logic"
	"repro/internal/ndlog"
	"repro/internal/value"
)

// inferSorts assigns a PVS sort to each predicate argument position using
// simple heuristics: location arguments are Nodes, arguments built by path
// functions are Paths, arguments used in arithmetic or ordering are
// Metrics, and fact constants contribute their value kinds. The inference
// is best-effort — sorts only affect readability of the generated theory
// and quantifier annotations, not soundness.
func inferSorts(an *ndlog.Analysis) map[string][]logic.Sort {
	sorts := map[string][]logic.Sort{}
	for pred, arity := range an.Arity {
		s := make([]logic.Sort, arity)
		if loc := an.LocIndex[pred]; loc >= 0 && loc < arity {
			s[loc] = logic.SortNode
		}
		sorts[pred] = s
	}

	set := func(pred string, i int, s logic.Sort) {
		if ps, ok := sorts[pred]; ok && i < len(ps) && ps[i] == "" {
			ps[i] = s
		}
	}

	// Facts contribute ground kinds.
	for _, f := range an.Prog.Facts {
		for i, v := range f.Args {
			switch v.K {
			case value.KindInt:
				set(f.Pred, i, logic.SortMetric)
			case value.KindAddr:
				set(f.Pred, i, logic.SortNode)
			case value.KindStr:
				set(f.Pred, i, logic.SortString)
			case value.KindList:
				set(f.Pred, i, logic.SortPath)
			case value.KindBool:
				set(f.Pred, i, logic.SortBool)
			}
		}
	}

	// Rules: per rule, classify variables, then push onto atom positions.
	for pass := 0; pass < 3; pass++ { // small fixpoint for propagation
		for _, r := range an.Prog.Rules {
			varSort := map[string]logic.Sort{}
			classify := func(name string, s logic.Sort) {
				if varSort[name] == "" {
					varSort[name] = s
				}
			}
			// Pull existing knowledge from atom positions.
			visit := func(atom *ndlog.Atom) {
				for i, arg := range atom.Args {
					v, ok := arg.(ndlog.VarE)
					if !ok {
						continue
					}
					if ps := sorts[atom.Pred]; i < len(ps) && ps[i] != "" {
						classify(v.Name, ps[i])
					}
				}
			}
			visit(&r.Head)
			for _, l := range r.Body {
				if l.Atom != nil {
					visit(l.Atom)
				}
			}
			// Expressions: arithmetic/order → Metric, path builtins → Path.
			var scan func(e ndlog.Expr)
			scan = func(e ndlog.Expr) {
				switch x := e.(type) {
				case ndlog.BinE:
					switch x.Op {
					case "+", "-", "*", "/", "%", "<", "<=", ">", ">=":
						for _, side := range []ndlog.Expr{x.L, x.R} {
							if v, ok := side.(ndlog.VarE); ok {
								classify(v.Name, logic.SortMetric)
							}
						}
					case "=", "==":
						// X = f_init(...) → X : Path.
						if v, ok := x.L.(ndlog.VarE); ok {
							if c, ok2 := x.R.(ndlog.CallE); ok2 && isPathFn(c.Fn) {
								classify(v.Name, logic.SortPath)
							}
						}
					}
					scan(x.L)
					scan(x.R)
				case ndlog.CallE:
					switch x.Fn {
					case "f_concatPath", "f_inPath", "f_size":
						for _, a := range x.Args {
							if v, ok := a.(ndlog.VarE); ok {
								// Heuristic: list argument of path functions.
								if x.Fn == "f_concatPath" && a == x.Args[1] || x.Fn != "f_concatPath" && a == x.Args[0] {
									classify(v.Name, logic.SortPath)
								}
							}
						}
					}
					for _, a := range x.Args {
						scan(a)
					}
				case ndlog.AggE:
					if x.Arg != "" && (x.Kind == "min" || x.Kind == "max" || x.Kind == "sum") {
						classify(x.Arg, logic.SortMetric)
					}
				}
			}
			for _, l := range r.Body {
				if l.Atom == nil {
					scan(l.Expr)
				}
			}
			for _, arg := range r.Head.Args {
				scan(arg)
			}
			// Push variable sorts back onto predicate positions.
			push := func(atom *ndlog.Atom) {
				for i, arg := range atom.Args {
					if v, ok := arg.(ndlog.VarE); ok {
						if s := varSort[v.Name]; s != "" {
							set(atom.Pred, i, s)
						}
					}
				}
			}
			push(&r.Head)
			for _, l := range r.Body {
				if l.Atom != nil {
					push(l.Atom)
				}
			}
		}
	}

	for _, s := range sorts {
		for i := range s {
			if s[i] == "" {
				s[i] = logic.SortAny
			}
		}
	}
	return sorts
}

func isPathFn(fn string) bool {
	switch fn {
	case "f_init", "f_concatPath", "f_append":
		return true
	}
	return false
}

// sortOfVar determines the sort of a body variable of rule r by looking at
// the atom positions it occupies.
func (tr *translator) sortOfVar(r *ndlog.Rule, name string) logic.Sort {
	check := func(atom *ndlog.Atom) logic.Sort {
		for i, arg := range atom.Args {
			if v, ok := arg.(ndlog.VarE); ok && v.Name == name {
				if s := tr.paramSort(atom.Pred, i); s != logic.SortAny {
					return s
				}
			}
		}
		return logic.SortAny
	}
	for _, l := range r.Body {
		if l.Atom != nil {
			if s := check(l.Atom); s != logic.SortAny {
				return s
			}
		}
	}
	if s := check(&r.Head); s != logic.SortAny {
		return s
	}
	return logic.SortAny
}
