package translate

import (
	"strings"
	"testing"

	"repro/internal/datalog"
	"repro/internal/logic"
	"repro/internal/ndlog"
	"repro/internal/prover"
	"repro/internal/value"
)

const pathVectorSrc = `
materialize(link, infinity, infinity, keys(1,2)).
materialize(path, infinity, infinity, keys(1,2,3)).

r1 path(@S,D,P,C) :- link(@S,D,C), P=f_init(S,D).
r2 path(@S,D,P,C) :- link(@S,Z,C1), path(@Z,D,P2,C2),
   C=C1+C2, P=f_concatPath(S,P2),
   f_inPath(P2,S)=false.
r3 bestPathCost(@S,D,min<C>) :- path(@S,D,P,C).
r4 bestPath(@S,D,P,C) :- bestPathCost(@S,D,C), path(@S,D,P,C).
`

func analyzed(t *testing.T, src string) *ndlog.Analysis {
	t.Helper()
	prog, err := ndlog.Parse("pv", src)
	if err != nil {
		t.Fatal(err)
	}
	an, err := ndlog.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	return an
}

func TestToLogicPathVectorShape(t *testing.T) {
	an := analyzed(t, pathVectorSrc)
	th, err := ToLogic(an, Options{TheoremsForAggregates: true})
	if err != nil {
		t.Fatal(err)
	}
	// The generated theory must contain the three inductive definitions.
	for _, name := range []string{"path", "bestPathCost", "bestPath"} {
		if _, ok := th.Lookup(name); !ok {
			t.Errorf("missing inductive definition %s", name)
		}
	}
	// path has two clauses (rules r1, r2), with the recursive clause
	// existentially quantified, matching the PVS listing in §3.1.
	pathDef, _ := th.Lookup("path")
	if got := len(pathDef.Clauses()); got != 2 {
		t.Errorf("path has %d clauses, want 2", got)
	}
	if len(pathDef.Params) != 4 || pathDef.Params[0].Name != "S" {
		t.Errorf("path params = %v", pathDef.Params)
	}
	rendered := th.String()
	for _, want := range []string{
		"path(S:Node,D:Node,P:Path,C:Metric): INDUCTIVE bool",
		"f_init(S,D)",
		"f_concatPath(S,P2)",
		"bestPathCostStrong: THEOREM",
	} {
		if !strings.Contains(rendered, want) {
			t.Errorf("theory rendering missing %q:\n%s", want, rendered)
		}
	}
	if err := th.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratedAggTheoremIsProvable(t *testing.T) {
	// E3 pipeline: parse NDlog → translate → prove route optimality.
	an := analyzed(t, pathVectorSrc)
	th, err := ToLogic(an, Options{TheoremsForAggregates: true})
	if err != nil {
		t.Fatal(err)
	}
	p, err := prover.New(th, "bestPathCostStrong")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.RunScript(`(skosimp*) (expand "bestPathCost") (flatten) (grind)`); err != nil {
		t.Fatal(err)
	}
	if !p.QED() {
		g, _ := p.Current()
		t.Fatalf("bestPathCostStrong not proved; %d open:\n%s", p.Open(), g.String())
	}
}

// bestPathStrong as in the paper, built over the *generated* theory.
func addBestPathStrong(th *logic.Theory) {
	S := logic.TV("S", logic.SortNode)
	D := logic.TV("D", logic.SortNode)
	P := logic.TV("P", logic.SortPath)
	C := logic.TV("C", logic.SortMetric)
	C2 := logic.TV("C2", logic.SortMetric)
	P2 := logic.TV("P2", logic.SortPath)
	th.AddTheorem("bestPathStrong", logic.Forall{
		Vars: []logic.Var{S, D, C, P},
		Body: logic.Implies{
			L: logic.Pred{Name: "bestPath", Args: []logic.Term{S, D, P, C}},
			R: logic.Not{F: logic.Exists{
				Vars: []logic.Var{C2, P2},
				Body: logic.Conj(
					logic.Pred{Name: "path", Args: []logic.Term{S, D, P2, C2}},
					logic.Cmp{Op: "<", L: C2, R: C},
				),
			}},
		},
	})
}

func TestBestPathStrongOverGeneratedTheorySevenSteps(t *testing.T) {
	// The full §3.1 experiment: the route-optimality proof over the theory
	// generated from NDlog source completes in the paper's 7 steps.
	an := analyzed(t, pathVectorSrc)
	th, err := ToLogic(an, Options{})
	if err != nil {
		t.Fatal(err)
	}
	addBestPathStrong(th)
	p, err := prover.New(th, "bestPathStrong")
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Prove(`
		(skosimp*)
		(expand "bestPath")
		(flatten)
		(expand "bestPathCost")
		(flatten)
		(inst -2 P2!1 C2!1)
		(assert)
	`)
	if err != nil {
		g, _ := p.Current()
		t.Fatalf("%v\ncurrent goal:\n%s", err, g.String())
	}
	if res.Steps != 7 {
		t.Errorf("proof took %d steps, paper reports 7: %v", res.Steps, res.Trace)
	}
}

func TestToLogicIncludeFacts(t *testing.T) {
	an := analyzed(t, pathVectorSrc+"\nlink(@a,b,1).\n")
	th, err := ToLogic(an, Options{IncludeFacts: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(th.Axioms) != 1 {
		t.Fatalf("axioms = %d, want 1", len(th.Axioms))
	}
	ax := th.Axioms[0]
	if !strings.Contains(ax.Goal.String(), "link(") {
		t.Errorf("fact axiom = %s", ax.Goal)
	}
}

func TestToLogicRejectsCountSum(t *testing.T) {
	an := analyzed(t, `r1 degree(@S,count<*>) :- link(@S,D).`)
	if _, err := ToLogic(an, Options{}); err == nil {
		t.Error("count aggregate translated to first-order logic")
	}
}

func TestToLogicRejectsDeleteRules(t *testing.T) {
	an := analyzed(t, `
r1 p(@S) :- q(@S).
rd delete p(@S) :- broken(@S), q(@S).
`)
	if _, err := ToLogic(an, Options{}); err == nil {
		t.Error("delete rule translated to inductive definition")
	}
}

func TestToLogicNegationTranslates(t *testing.T) {
	an := analyzed(t, `
r1 reach(@X,Y) :- edge(@X,Y).
r2 dead(@X,Y) :- node(@X), node(@Y), !reach(@X,Y).
`)
	th, err := ToLogic(an, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dead, ok := th.Lookup("dead")
	if !ok {
		t.Fatal("dead not defined")
	}
	if !strings.Contains(dead.Body.String(), "NOT reach(") {
		t.Errorf("negation lost: %s", dead.Body)
	}
	if err := th.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestToLogicConstantHeadArgs(t *testing.T) {
	an := analyzed(t, `r1 status(@S, "up", 1) :- node(@S).`)
	th, err := ToLogic(an, Options{})
	if err != nil {
		t.Fatal(err)
	}
	def, ok := th.Lookup("status")
	if !ok {
		t.Fatal("status not defined")
	}
	// Constant head args become parameter equations.
	body := def.Body.String()
	if !strings.Contains(body, `="up"`) && !strings.Contains(body, `"up"=`) {
		t.Errorf("constant head arg not equated: %s", body)
	}
}

func TestSortInference(t *testing.T) {
	an := analyzed(t, pathVectorSrc)
	sorts := inferSorts(an)
	link := sorts["link"]
	if link[0] != logic.SortNode {
		t.Errorf("link arg 1 sort = %s, want Node", link[0])
	}
	if link[2] != logic.SortMetric {
		t.Errorf("link arg 3 sort = %s, want Metric", link[2])
	}
	path := sorts["path"]
	if path[2] != logic.SortPath {
		t.Errorf("path arg 3 sort = %s, want Path", path[2])
	}
	if path[3] != logic.SortMetric {
		t.Errorf("path arg 4 sort = %s, want Metric", path[3])
	}
}

const softPingSrc = `
materialize(neighbor, 10, infinity, keys(1,2)).
materialize(link, infinity, infinity, keys(1,2)).

n1 neighbor(@N,M) :- ping(@N,M).
n2 twoHop(@N,M2) :- neighbor(@N,M), link(@M,M2).
`

func TestSoftStateRewriteShape(t *testing.T) {
	prog := ndlog.MustParse("soft", softPingSrc)
	hard, err := RewriteSoftState(prog)
	if err != nil {
		t.Fatal(err)
	}
	// neighbor gains a timestamp column; rules referencing it gain clock
	// atoms and freshness constraints.
	n1, ok := hard.RuleByLabel("n1")
	if !ok {
		t.Fatal("n1 missing")
	}
	if len(n1.Head.Args) != 3 {
		t.Errorf("n1 head arity = %d, want 3 (timestamp added)", len(n1.Head.Args))
	}
	text := hard.String()
	for _, want := range []string{"clock(", "Now", "<="} {
		if !strings.Contains(text, want) {
			t.Errorf("rewritten program missing %q:\n%s", want, text)
		}
	}
	// All lifetimes are now infinite.
	for _, m := range hard.Materialized {
		if !m.Lifetime.Infinite {
			t.Errorf("materialize %s still soft", m.Pred)
		}
	}
}

func TestSoftStateRewriteSemantics(t *testing.T) {
	// A base soft table: neighbor entries expire 10 seconds after their
	// timestamp, so derived twoHop facts vanish when the clock passes the
	// lifetime.
	prog := ndlog.MustParse("soft", `
materialize(neighbor, 10, infinity, keys(1,2)).
materialize(link, infinity, infinity, keys(1,2)).
n2 twoHop(@N,M2) :- neighbor(@N,M), link(@M,M2).
`)
	hard, err := RewriteSoftState(prog)
	if err != nil {
		t.Fatal(err)
	}
	e, err := datalog.New(hard)
	if err != nil {
		t.Fatal(err)
	}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	// neighbor observed at t=0; clock at t=5: fresh (lifetime 10).
	must(e.Insert("neighbor", value.Tuple{value.Addr("a"), value.Addr("b"), value.Int(0)}))
	must(e.Insert("link", value.Tuple{value.Addr("b"), value.Addr("c")}))
	must(e.Insert("clock", value.Tuple{value.Addr("a"), value.Int(5)}))
	must(e.Run())
	if e.Count("twoHop") != 1 {
		t.Fatalf("fresh neighbor did not derive twoHop: %v", e.Query("neighbor"))
	}
	// Advance the clock beyond the lifetime: the t=0 entry is stale at
	// t=20 and twoHop must disappear.
	e.DeleteBase("clock", value.Tuple{value.Addr("a"), value.Int(5)})
	must(e.Insert("clock", value.Tuple{value.Addr("a"), value.Int(20)}))
	must(e.Run())
	if e.Count("twoHop") != 0 {
		t.Errorf("stale neighbor still derives twoHop: %v", e.Query("twoHop"))
	}
}

func TestSoftStateRewriteNoSoftTables(t *testing.T) {
	prog := ndlog.MustParse("hard", `r1 p(@S) :- q(@S).`)
	out, err := RewriteSoftState(prog)
	if err != nil {
		t.Fatal(err)
	}
	if out != prog {
		t.Error("pure hard-state program should be returned unchanged")
	}
}

func TestRewrittenSoftStateTranslates(t *testing.T) {
	// §4.2's point: the rewrite makes soft-state programs amenable to the
	// hard-state translation, at the cost of extra clock machinery.
	prog := ndlog.MustParse("soft", softPingSrc)
	hard, err := RewriteSoftState(prog)
	if err != nil {
		t.Fatal(err)
	}
	an, err := ndlog.Analyze(hard)
	if err != nil {
		t.Fatal(err)
	}
	th, err := ToLogic(an, Options{})
	if err != nil {
		t.Fatal(err)
	}
	nb, ok := th.Lookup("neighbor")
	if !ok {
		t.Fatal("neighbor not in theory")
	}
	if len(nb.Params) != 3 {
		t.Errorf("neighbor params = %d, want 3", len(nb.Params))
	}
	// The encoding is visibly heavier: the twoHop definition mentions the
	// clock and the freshness bound.
	two, _ := th.Lookup("twoHop")
	body := two.Body.String()
	if !strings.Contains(body, "clock(") || !strings.Contains(body, "<=") {
		t.Errorf("freshness constraints missing: %s", body)
	}
}
