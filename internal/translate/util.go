package translate

import "repro/internal/value"

var intZero = value.Int(0)

// intVal converts a lifetime in seconds to an integer value (lifetimes in
// the rewritten program are whole seconds; sub-second lifetimes round up so
// freshness is never overstated).
func intVal(seconds float64) value.V {
	i := int64(seconds)
	if float64(i) < seconds {
		i++
	}
	return value.Int(i)
}
