package value

import "fmt"

// Func is a builtin NDlog function: a pure mapping from argument values to a
// result value. Builtins are shared by the Datalog engine (which evaluates
// them during rule bodies), the distributed runtime, and the theorem prover's
// decision procedure (which evaluates ground terms).
type Func struct {
	Name  string
	Arity int // -1 means variadic
	Apply func(args []V) (V, error)
}

// builtins maps a function name to its implementation.
var builtins = map[string]Func{}

// RegisterFunc installs a builtin function. It panics if the name is
// already registered; builtins are process-global and registered at init
// time only.
func RegisterFunc(f Func) {
	if _, dup := builtins[f.Name]; dup {
		panic("value: duplicate builtin function " + f.Name)
	}
	builtins[f.Name] = f
}

// LookupFunc returns the builtin with the given name.
func LookupFunc(name string) (Func, bool) {
	f, ok := builtins[name]
	return f, ok
}

// Apply evaluates the named builtin on args.
func Apply(name string, args []V) (V, error) {
	f, ok := builtins[name]
	if !ok {
		return V{}, fmt.Errorf("value: unknown function %q", name)
	}
	if f.Arity >= 0 && len(args) != f.Arity {
		return V{}, fmt.Errorf("value: %s expects %d arguments, got %d", name, f.Arity, len(args))
	}
	return f.Apply(args)
}

// IsBuiltin reports whether name is a registered builtin function.
func IsBuiltin(name string) bool {
	_, ok := builtins[name]
	return ok
}

func wantList(name string, v V) ([]V, error) {
	if v.K != KindList {
		return nil, fmt.Errorf("value: %s expects a list, got %s", name, v.K)
	}
	return v.L, nil
}

func wantInt(name string, v V) (int64, error) {
	if v.K != KindInt {
		return 0, fmt.Errorf("value: %s expects an int, got %s", name, v.K)
	}
	return v.I, nil
}

func init() {
	// f_init(S, D) constructs the two-element path vector [S, D].
	RegisterFunc(Func{Name: "f_init", Arity: 2, Apply: func(a []V) (V, error) {
		return List(a[0], a[1]), nil
	}})

	// f_concatPath(S, P) prepends node S to path vector P.
	RegisterFunc(Func{Name: "f_concatPath", Arity: 2, Apply: func(a []V) (V, error) {
		p, err := wantList("f_concatPath", a[1])
		if err != nil {
			return V{}, err
		}
		out := make([]V, 0, len(p)+1)
		out = append(out, a[0])
		out = append(out, p...)
		return List(out...), nil
	}})

	// f_inPath(P, S) reports whether node S occurs in path vector P.
	RegisterFunc(Func{Name: "f_inPath", Arity: 2, Apply: func(a []V) (V, error) {
		p, err := wantList("f_inPath", a[0])
		if err != nil {
			return V{}, err
		}
		for _, e := range p {
			if e.Equal(a[1]) {
				return Bool(true), nil
			}
		}
		return Bool(false), nil
	}})

	// f_size(P) returns the length of list P.
	RegisterFunc(Func{Name: "f_size", Arity: 1, Apply: func(a []V) (V, error) {
		p, err := wantList("f_size", a[0])
		if err != nil {
			return V{}, err
		}
		return Int(int64(len(p))), nil
	}})

	// f_last(P) returns the last element of list P.
	RegisterFunc(Func{Name: "f_last", Arity: 1, Apply: func(a []V) (V, error) {
		p, err := wantList("f_last", a[0])
		if err != nil {
			return V{}, err
		}
		if len(p) == 0 {
			return V{}, fmt.Errorf("value: f_last of empty list")
		}
		return p[len(p)-1], nil
	}})

	// f_first(P) returns the first element of list P.
	RegisterFunc(Func{Name: "f_first", Arity: 1, Apply: func(a []V) (V, error) {
		p, err := wantList("f_first", a[0])
		if err != nil {
			return V{}, err
		}
		if len(p) == 0 {
			return V{}, fmt.Errorf("value: f_first of empty list")
		}
		return p[0], nil
	}})

	// f_append(P, X) appends element X to list P.
	RegisterFunc(Func{Name: "f_append", Arity: 2, Apply: func(a []V) (V, error) {
		p, err := wantList("f_append", a[0])
		if err != nil {
			return V{}, err
		}
		out := make([]V, 0, len(p)+1)
		out = append(out, p...)
		out = append(out, a[1])
		return List(out...), nil
	}})

	// f_member(P, I) returns the I-th (0-based) element of list P.
	RegisterFunc(Func{Name: "f_member", Arity: 2, Apply: func(a []V) (V, error) {
		p, err := wantList("f_member", a[0])
		if err != nil {
			return V{}, err
		}
		i, err := wantInt("f_member", a[1])
		if err != nil {
			return V{}, err
		}
		if i < 0 || i >= int64(len(p)) {
			return V{}, fmt.Errorf("value: f_member index %d out of range [0,%d)", i, len(p))
		}
		return p[i], nil
	}})

	// f_if(Cond, Then, Else) selects by a boolean (used e.g. for BGP route
	// poisoning: loopy paths get an infinite rank instead of being dropped,
	// so the keyed candidate table sees an implicit withdrawal).
	RegisterFunc(Func{Name: "f_if", Arity: 3, Apply: func(a []V) (V, error) {
		if !a[0].IsBool() {
			return V{}, fmt.Errorf("value: f_if condition must be a bool, got %s", a[0].K)
		}
		if a[0].True() {
			return a[1], nil
		}
		return a[2], nil
	}})

	// f_min(A, B) and f_max(A, B) over the total value order.
	RegisterFunc(Func{Name: "f_min", Arity: 2, Apply: func(a []V) (V, error) {
		if a[0].Compare(a[1]) <= 0 {
			return a[0], nil
		}
		return a[1], nil
	}})
	RegisterFunc(Func{Name: "f_max", Arity: 2, Apply: func(a []V) (V, error) {
		if a[0].Compare(a[1]) >= 0 {
			return a[0], nil
		}
		return a[1], nil
	}})
}

// ApplyBinary evaluates an infix operator (+, -, *, /, %) or comparison
// (==, !=, <, <=, >, >=) or boolean connective (&&, ||) on two values.
func ApplyBinary(op string, l, r V) (V, error) {
	switch op {
	case "+", "-", "*", "/", "%":
		if l.K != KindInt || r.K != KindInt {
			// "+" also concatenates strings and lists.
			if op == "+" && l.K == KindStr && r.K == KindStr {
				return Str(l.S + r.S), nil
			}
			if op == "+" && l.K == KindList && r.K == KindList {
				out := make([]V, 0, len(l.L)+len(r.L))
				out = append(out, l.L...)
				out = append(out, r.L...)
				return List(out...), nil
			}
			return V{}, fmt.Errorf("value: %s requires ints, got %s and %s", op, l.K, r.K)
		}
		switch op {
		case "+":
			return Int(l.I + r.I), nil
		case "-":
			return Int(l.I - r.I), nil
		case "*":
			return Int(l.I * r.I), nil
		case "/":
			if r.I == 0 {
				return V{}, fmt.Errorf("value: division by zero")
			}
			return Int(l.I / r.I), nil
		case "%":
			if r.I == 0 {
				return V{}, fmt.Errorf("value: modulo by zero")
			}
			return Int(l.I % r.I), nil
		}
	case "==":
		return Bool(l.Equal(r)), nil
	case "!=":
		return Bool(!l.Equal(r)), nil
	case "<":
		return Bool(l.Compare(r) < 0), nil
	case "<=":
		return Bool(l.Compare(r) <= 0), nil
	case ">":
		return Bool(l.Compare(r) > 0), nil
	case ">=":
		return Bool(l.Compare(r) >= 0), nil
	case "&&":
		if !l.IsBool() || !r.IsBool() {
			return V{}, fmt.Errorf("value: && requires bools")
		}
		return Bool(l.True() && r.True()), nil
	case "||":
		if !l.IsBool() || !r.IsBool() {
			return V{}, fmt.Errorf("value: || requires bools")
		}
		return Bool(l.True() || r.True()), nil
	}
	return V{}, fmt.Errorf("value: unknown operator %q", op)
}
