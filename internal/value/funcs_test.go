package value

import "testing"

func TestFIf(t *testing.T) {
	v, err := Apply("f_if", []V{Bool(true), Int(1), Int(2)})
	if err != nil || v.I != 1 {
		t.Errorf("f_if(true) = %v, %v", v, err)
	}
	v, err = Apply("f_if", []V{Bool(false), Int(1), Int(2)})
	if err != nil || v.I != 2 {
		t.Errorf("f_if(false) = %v, %v", v, err)
	}
	if _, err := Apply("f_if", []V{Int(1), Int(1), Int(2)}); err == nil {
		t.Error("f_if with non-bool condition accepted")
	}
}

func TestFAppendAndMember(t *testing.T) {
	l, err := Apply("f_append", []V{List(Int(1)), Int(2)})
	if err != nil || len(l.L) != 2 || l.L[1].I != 2 {
		t.Errorf("f_append = %v, %v", l, err)
	}
	m, err := Apply("f_member", []V{l, Int(1)})
	if err != nil || m.I != 2 {
		t.Errorf("f_member = %v, %v", m, err)
	}
	if _, err := Apply("f_member", []V{l, Int(-1)}); err == nil {
		t.Error("negative index accepted")
	}
	if _, err := Apply("f_append", []V{Int(1), Int(2)}); err == nil {
		t.Error("f_append on non-list accepted")
	}
}

func TestFMinMax(t *testing.T) {
	v, _ := Apply("f_min", []V{Int(3), Int(5)})
	if v.I != 3 {
		t.Errorf("f_min = %v", v)
	}
	v, _ = Apply("f_max", []V{Int(3), Int(5)})
	if v.I != 5 {
		t.Errorf("f_max = %v", v)
	}
	// Ties return either operand; both are equal.
	v, _ = Apply("f_min", []V{Str("a"), Str("a")})
	if v.S != "a" {
		t.Errorf("f_min tie = %v", v)
	}
}

func TestLookupFunc(t *testing.T) {
	f, ok := LookupFunc("f_init")
	if !ok || f.Arity != 2 {
		t.Errorf("LookupFunc(f_init) = %+v, %v", f, ok)
	}
	if _, ok := LookupFunc("nope"); ok {
		t.Error("ghost builtin found")
	}
	if !IsBuiltin("f_inPath") || IsBuiltin("nope") {
		t.Error("IsBuiltin wrong")
	}
}

func TestCrossKindCompare(t *testing.T) {
	// Kinds order before content; the exact order is unspecified but must
	// be total and antisymmetric.
	a, b := Int(1), Str("1")
	if a.Compare(b) == 0 {
		t.Error("cross-kind compare returned equal")
	}
	if a.Compare(b) != -b.Compare(a) {
		t.Error("cross-kind compare not antisymmetric")
	}
}

func TestBoolHelpers(t *testing.T) {
	if !Bool(true).IsBool() || !Bool(false).IsBool() || Int(1).IsBool() {
		t.Error("IsBool wrong")
	}
	if Bool(false).True() || !Bool(true).True() || Int(1).True() {
		t.Error("True wrong")
	}
}

func TestStringConcatViaPlus(t *testing.T) {
	v, err := ApplyBinary("+", Str("foo"), Str("bar"))
	if err != nil || v.S != "foobar" {
		t.Errorf("string + = %v, %v", v, err)
	}
}
