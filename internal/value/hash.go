package value

// Fingerprint hashing for values and tuples: a splitmix64-mixed stream
// hash, the same construction the model checker uses for state dedup.
// Distinct values collide with probability ~2^-64; the batched plan
// executor uses it both for index probes (verified against the stored
// key, so collisions cost a comparison, never correctness) and for
// join-output fingerprint dedup (unverified, like model-checker state
// fingerprints).

// HashSeed is the canonical initial hash state.
const HashSeed uint64 = 0x9e3779b97f4a7c15

const fnvPrime = 0x100000001b3

// mix64 is the splitmix64 finalizer.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// Hash64 folds v into the running hash h. Values that compare Equal hash
// identically; the kind and, for strings, the length are folded in so
// that e.g. Int(1) and Str("1") or adjacent list elements cannot alias.
func (v V) Hash64(h uint64) uint64 {
	h = mix64(h ^ uint64(v.K))
	switch v.K {
	case KindInt, KindBool:
		h = mix64(h ^ uint64(v.I))
	case KindStr, KindAddr:
		h ^= uint64(len(v.S))
		for i := 0; i < len(v.S); i++ {
			h = (h ^ uint64(v.S[i])) * fnvPrime
		}
		h = mix64(h)
	case KindList:
		h = mix64(h ^ uint64(len(v.L)))
		for _, e := range v.L {
			h = e.Hash64(h)
		}
	}
	return h
}

// Hash64 folds every element of t into the running hash h.
func (t Tuple) Hash64(h uint64) uint64 {
	for _, v := range t {
		h = v.Hash64(h)
	}
	return h
}
