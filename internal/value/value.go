// Package value defines the shared data domain of the FVN toolchain.
//
// NDlog tuples, logical terms, routing-algebra signatures, and simulator
// messages all carry values drawn from the same small universe: integers,
// strings, booleans, node addresses, and lists (used for path vectors).
// Keeping one canonical representation lets the translator move data between
// the Datalog engine, the theorem prover, and the distributed runtime
// without conversion layers.
package value

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Kind identifies the dynamic type of a V.
type Kind uint8

// The value kinds of the FVN data domain.
const (
	KindInt Kind = iota
	KindStr
	KindBool
	KindAddr // a node address such as "n3"; distinct from Str so location analysis can type-check
	KindList // a list of values, e.g. an NDlog path vector
)

// String returns the NDlog type name of the kind.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindStr:
		return "string"
	case KindBool:
		return "bool"
	case KindAddr:
		return "addr"
	case KindList:
		return "list"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// V is a value of the FVN data domain. The zero value is the integer 0.
//
// V is a small tagged union: exactly one of I, S, L is meaningful,
// selected by K. Booleans are stored in I (0 or 1).
type V struct {
	K Kind
	I int64
	S string
	L []V
}

// Int returns an integer value.
func Int(i int64) V { return V{K: KindInt, I: i} }

// Str returns a string value.
func Str(s string) V { return V{K: KindStr, S: s} }

// Bool returns a boolean value.
func Bool(b bool) V {
	if b {
		return V{K: KindBool, I: 1}
	}
	return V{K: KindBool, I: 0}
}

// Addr returns a node-address value.
func Addr(a string) V { return V{K: KindAddr, S: a} }

// List returns a list value. The slice is used directly; callers that
// retain the argument should pass a copy.
func List(vs ...V) V { return V{K: KindList, L: vs} }

// True reports whether v is the boolean true.
func (v V) True() bool { return v.K == KindBool && v.I != 0 }

// IsBool reports whether v is a boolean.
func (v V) IsBool() bool { return v.K == KindBool }

// Equal reports whether v and w are structurally identical values.
func (v V) Equal(w V) bool {
	if v.K != w.K {
		return false
	}
	switch v.K {
	case KindInt, KindBool:
		return v.I == w.I
	case KindStr, KindAddr:
		return v.S == w.S
	case KindList:
		if len(v.L) != len(w.L) {
			return false
		}
		for i := range v.L {
			if !v.L[i].Equal(w.L[i]) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// Compare orders values totally: first by kind, then by content.
// Lists compare lexicographically. It returns -1, 0, or +1.
func (v V) Compare(w V) int {
	if v.K != w.K {
		if v.K < w.K {
			return -1
		}
		return 1
	}
	switch v.K {
	case KindInt, KindBool:
		switch {
		case v.I < w.I:
			return -1
		case v.I > w.I:
			return 1
		}
		return 0
	case KindStr, KindAddr:
		return strings.Compare(v.S, w.S)
	case KindList:
		for i := 0; i < len(v.L) && i < len(w.L); i++ {
			if c := v.L[i].Compare(w.L[i]); c != 0 {
				return c
			}
		}
		switch {
		case len(v.L) < len(w.L):
			return -1
		case len(v.L) > len(w.L):
			return 1
		}
		return 0
	default:
		return 0
	}
}

// String renders the value in NDlog literal syntax.
func (v V) String() string {
	switch v.K {
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindBool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	case KindStr:
		return strconv.Quote(v.S)
	case KindAddr:
		return v.S
	case KindList:
		parts := make([]string, len(v.L))
		for i, e := range v.L {
			parts[i] = e.String()
		}
		return "[" + strings.Join(parts, ",") + "]"
	default:
		return "?"
	}
}

// Key returns a canonical encoding of v usable as a map key. Distinct
// values always have distinct keys.
func (v V) Key() string {
	var b strings.Builder
	v.appendKey(&b)
	return b.String()
}

func (v V) appendKey(b *strings.Builder) {
	switch v.K {
	case KindInt:
		b.WriteByte('i')
		b.WriteString(strconv.FormatInt(v.I, 10))
	case KindBool:
		b.WriteByte('b')
		if v.I != 0 {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	case KindStr:
		b.WriteByte('s')
		b.WriteString(strconv.Itoa(len(v.S)))
		b.WriteByte(':')
		b.WriteString(v.S)
	case KindAddr:
		b.WriteByte('a')
		b.WriteString(strconv.Itoa(len(v.S)))
		b.WriteByte(':')
		b.WriteString(v.S)
	case KindList:
		b.WriteByte('l')
		b.WriteString(strconv.Itoa(len(v.L)))
		b.WriteByte('[')
		for _, e := range v.L {
			e.appendKey(b)
		}
		b.WriteByte(']')
	}
}

// AppendKey appends the canonical encoding of v (identical to Key) to b
// and returns the extended slice. It lets hot paths build map keys into a
// reusable buffer and look them up with the non-allocating m[string(b)]
// conversion.
func (v V) AppendKey(b []byte) []byte {
	switch v.K {
	case KindInt:
		b = append(b, 'i')
		b = strconv.AppendInt(b, v.I, 10)
	case KindBool:
		b = append(b, 'b')
		if v.I != 0 {
			b = append(b, '1')
		} else {
			b = append(b, '0')
		}
	case KindStr:
		b = append(b, 's')
		b = strconv.AppendInt(b, int64(len(v.S)), 10)
		b = append(b, ':')
		b = append(b, v.S...)
	case KindAddr:
		b = append(b, 'a')
		b = strconv.AppendInt(b, int64(len(v.S)), 10)
		b = append(b, ':')
		b = append(b, v.S...)
	case KindList:
		b = append(b, 'l')
		b = strconv.AppendInt(b, int64(len(v.L)), 10)
		b = append(b, '[')
		for _, e := range v.L {
			b = e.AppendKey(b)
		}
		b = append(b, ']')
	}
	return b
}

// Tuple is an ordered sequence of values, e.g. the arguments of a fact.
type Tuple []V

// Key returns a canonical encoding of the tuple usable as a map key.
func (t Tuple) Key() string {
	var b strings.Builder
	for i, v := range t {
		if i > 0 {
			b.WriteByte('|')
		}
		v.appendKey(&b)
	}
	return b.String()
}

// AppendKey appends the canonical encoding of the tuple (identical to
// Key) to b and returns the extended slice.
func (t Tuple) AppendKey(b []byte) []byte {
	for i, v := range t {
		if i > 0 {
			b = append(b, '|')
		}
		b = v.AppendKey(b)
	}
	return b
}

// Equal reports whether two tuples are element-wise equal.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if !t[i].Equal(u[i]) {
			return false
		}
	}
	return true
}

// Compare orders tuples lexicographically.
func (t Tuple) Compare(u Tuple) int {
	for i := 0; i < len(t) && i < len(u); i++ {
		if c := t[i].Compare(u[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(t) < len(u):
		return -1
	case len(t) > len(u):
		return 1
	}
	return 0
}

// Clone returns a deep copy of the tuple.
func (t Tuple) Clone() Tuple {
	u := make(Tuple, len(t))
	for i, v := range t {
		u[i] = v.clone()
	}
	return u
}

func (v V) clone() V {
	if v.K != KindList {
		return v
	}
	l := make([]V, len(v.L))
	for i, e := range v.L {
		l[i] = e.clone()
	}
	return V{K: KindList, L: l}
}

// String renders the tuple as a parenthesized list.
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// SortTuples sorts a slice of tuples lexicographically, for deterministic output.
func SortTuples(ts []Tuple) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].Compare(ts[j]) < 0 })
}
