package value

import (
	"testing"
	"testing/quick"
)

func TestEqualAndCompare(t *testing.T) {
	tests := []struct {
		a, b V
		eq   bool
		cmp  int
	}{
		{Int(1), Int(1), true, 0},
		{Int(1), Int(2), false, -1},
		{Str("a"), Str("b"), false, -1},
		{Str("a"), Str("a"), true, 0},
		{Bool(true), Bool(false), false, 1},
		{Addr("n1"), Addr("n1"), true, 0},
		{Addr("n1"), Str("n1"), false, 0}, // different kinds never equal
		{List(Int(1), Int(2)), List(Int(1), Int(2)), true, 0},
		{List(Int(1)), List(Int(1), Int(2)), false, -1},
		{List(Int(2)), List(Int(1), Int(9)), false, 1},
	}
	for _, tc := range tests {
		if got := tc.a.Equal(tc.b); got != tc.eq {
			t.Errorf("%v.Equal(%v) = %v, want %v", tc.a, tc.b, got, tc.eq)
		}
		if tc.a.K == tc.b.K {
			if got := tc.a.Compare(tc.b); got != tc.cmp {
				t.Errorf("%v.Compare(%v) = %d, want %d", tc.a, tc.b, got, tc.cmp)
			}
		}
	}
}

func TestCompareTotalOrderProperties(t *testing.T) {
	// Antisymmetry and consistency with Equal, property-checked.
	f := func(a, b int64, s1, s2 string) bool {
		vs := []V{Int(a), Int(b), Str(s1), Str(s2), List(Int(a), Str(s1)), Bool(a%2 == 0)}
		for _, x := range vs {
			for _, y := range vs {
				cxy, cyx := x.Compare(y), y.Compare(x)
				if cxy != -cyx {
					return false
				}
				if (cxy == 0) != x.Equal(y) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKeyInjective(t *testing.T) {
	f := func(a int64, s string, b bool) bool {
		vs := []V{Int(a), Str(s), Bool(b), Addr(s), List(Int(a)), List(Str(s), Int(a))}
		for i, x := range vs {
			for j, y := range vs {
				if (x.Key() == y.Key()) != (i == j || x.Equal(y)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKeyDistinguishesNesting(t *testing.T) {
	a := List(List(Int(1)), Int(2))
	b := List(List(Int(1), Int(2)))
	if a.Key() == b.Key() {
		t.Errorf("nested lists share key: %q", a.Key())
	}
	// String/addr confusion.
	if Str("x").Key() == Addr("x").Key() {
		t.Error("Str and Addr share key")
	}
}

func TestString(t *testing.T) {
	tests := []struct {
		v    V
		want string
	}{
		{Int(-3), "-3"},
		{Str("hi"), `"hi"`},
		{Bool(true), "true"},
		{Addr("n2"), "n2"},
		{List(Int(1), Addr("a")), "[1,a]"},
	}
	for _, tc := range tests {
		if got := tc.v.String(); got != tc.want {
			t.Errorf("String(%v) = %q, want %q", tc.v.K, got, tc.want)
		}
	}
}

func TestTupleOperations(t *testing.T) {
	a := Tuple{Int(1), Str("x")}
	b := Tuple{Int(1), Str("x")}
	c := Tuple{Int(1), Str("y")}
	if !a.Equal(b) || a.Equal(c) {
		t.Error("tuple equality wrong")
	}
	if a.Compare(c) >= 0 {
		t.Error("tuple compare wrong")
	}
	if a.Key() == c.Key() {
		t.Error("tuple keys collide")
	}
	clone := a.Clone()
	if !clone.Equal(a) {
		t.Error("clone differs")
	}
}

func TestCloneIsDeep(t *testing.T) {
	orig := Tuple{List(Int(1), Int(2))}
	clone := orig.Clone()
	clone[0].L[0] = Int(99)
	if orig[0].L[0].I != 1 {
		t.Error("Clone shares list storage with original")
	}
}

func TestBuiltinPathFunctions(t *testing.T) {
	p, err := Apply("f_init", []V{Addr("s"), Addr("d")})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.L) != 2 || p.L[0].S != "s" || p.L[1].S != "d" {
		t.Fatalf("f_init = %v", p)
	}
	p2, err := Apply("f_concatPath", []V{Addr("a"), p})
	if err != nil {
		t.Fatal(err)
	}
	if len(p2.L) != 3 || p2.L[0].S != "a" {
		t.Fatalf("f_concatPath = %v", p2)
	}
	in, err := Apply("f_inPath", []V{p2, Addr("d")})
	if err != nil {
		t.Fatal(err)
	}
	if !in.True() {
		t.Error("f_inPath missed member")
	}
	out, err := Apply("f_inPath", []V{p2, Addr("z")})
	if err != nil {
		t.Fatal(err)
	}
	if out.True() {
		t.Error("f_inPath found non-member")
	}
	sz, err := Apply("f_size", []V{p2})
	if err != nil || sz.I != 3 {
		t.Errorf("f_size = %v, %v", sz, err)
	}
	last, err := Apply("f_last", []V{p2})
	if err != nil || last.S != "d" {
		t.Errorf("f_last = %v, %v", last, err)
	}
	first, err := Apply("f_first", []V{p2})
	if err != nil || first.S != "a" {
		t.Errorf("f_first = %v, %v", first, err)
	}
}

func TestBuiltinErrors(t *testing.T) {
	if _, err := Apply("f_nope", nil); err == nil {
		t.Error("unknown function accepted")
	}
	if _, err := Apply("f_init", []V{Int(1)}); err == nil {
		t.Error("arity error accepted")
	}
	if _, err := Apply("f_inPath", []V{Int(1), Int(2)}); err == nil {
		t.Error("type error accepted")
	}
	if _, err := Apply("f_last", []V{List()}); err == nil {
		t.Error("f_last of empty list accepted")
	}
	if _, err := Apply("f_member", []V{List(Int(1)), Int(5)}); err == nil {
		t.Error("out-of-range f_member accepted")
	}
}

func TestApplyBinaryArith(t *testing.T) {
	tests := []struct {
		op   string
		l, r V
		want V
	}{
		{"+", Int(2), Int(3), Int(5)},
		{"-", Int(2), Int(3), Int(-1)},
		{"*", Int(4), Int(3), Int(12)},
		{"/", Int(7), Int(2), Int(3)},
		{"%", Int(7), Int(2), Int(1)},
		{"+", Str("a"), Str("b"), Str("ab")},
		{"+", List(Int(1)), List(Int(2)), List(Int(1), Int(2))},
		{"==", Int(1), Int(1), Bool(true)},
		{"!=", Int(1), Int(1), Bool(false)},
		{"<", Int(1), Int(2), Bool(true)},
		{"<=", Int(2), Int(2), Bool(true)},
		{">", Int(1), Int(2), Bool(false)},
		{">=", Int(3), Int(2), Bool(true)},
		{"&&", Bool(true), Bool(false), Bool(false)},
		{"||", Bool(true), Bool(false), Bool(true)},
	}
	for _, tc := range tests {
		got, err := ApplyBinary(tc.op, tc.l, tc.r)
		if err != nil {
			t.Errorf("%v %s %v: %v", tc.l, tc.op, tc.r, err)
			continue
		}
		if !got.Equal(tc.want) {
			t.Errorf("%v %s %v = %v, want %v", tc.l, tc.op, tc.r, got, tc.want)
		}
	}
}

func TestApplyBinaryErrors(t *testing.T) {
	if _, err := ApplyBinary("/", Int(1), Int(0)); err == nil {
		t.Error("division by zero accepted")
	}
	if _, err := ApplyBinary("%", Int(1), Int(0)); err == nil {
		t.Error("modulo by zero accepted")
	}
	if _, err := ApplyBinary("+", Int(1), Str("x")); err == nil {
		t.Error("mixed-type + accepted")
	}
	if _, err := ApplyBinary("&&", Int(1), Bool(true)); err == nil {
		t.Error("non-bool && accepted")
	}
	if _, err := ApplyBinary("??", Int(1), Int(1)); err == nil {
		t.Error("unknown operator accepted")
	}
}

func TestRegisterFuncDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	RegisterFunc(Func{Name: "f_init", Arity: 2, Apply: func([]V) (V, error) { return V{}, nil }})
}

func TestSortTuples(t *testing.T) {
	ts := []Tuple{{Int(2)}, {Int(1)}, {Int(3)}}
	SortTuples(ts)
	if ts[0][0].I != 1 || ts[2][0].I != 3 {
		t.Errorf("SortTuples = %v", ts)
	}
}
