package verify

import (
	"context"
	"runtime"
	"testing"
	"time"
)

// waitGoroutines polls until the goroutine count drops back to at most
// base (the runtime needs a moment to retire exiting goroutines).
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Errorf("goroutine leak after cancelled pipeline run: %d live, baseline %d", n, base)
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestPipelineCancelMidRun cancels the context between obligations (via
// a Check obligation that fires the cancel) and asserts the drain
// contract: Run returns a Result for every obligation, the ones
// completed before the cancel are real, the rest are marked Cancelled,
// and no worker goroutine is left behind.
func TestPipelineCancelMidRun(t *testing.T) {
	base := runtime.NumGoroutine()

	obls := randObligations(5, 10)
	oracle := NewPipeline(Options{Workers: 1}).Run(context.Background(), obls)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var list []Obligation
	list = append(list, obls[:5]...)
	list = append(list, Obligation{Name: "canceller", Check: func() error { cancel(); return nil }})
	list = append(list, obls[5:]...)

	rep := NewPipeline(Options{Workers: 1}).Run(ctx, list)
	if !rep.Cancelled {
		t.Fatal("report of a cancelled run not marked Cancelled")
	}
	if len(rep.Results) != len(list) {
		t.Fatalf("cancelled run returned %d results, want %d (every obligation gets one)",
			len(rep.Results), len(list))
	}
	// Sequential workers: everything before the canceller completed
	// normally and must match the uncancelled oracle exactly.
	for i := 0; i < 5; i++ {
		sameOutcome(t, "pre-cancel", oracle.Results[i], rep.Results[i])
		if rep.Results[i].Cancelled {
			t.Errorf("obligation %d completed before the cancel but is marked Cancelled", i)
		}
	}
	// Everything after it was drained as cancelled: not proved, no fake
	// verdicts.
	for i := 6; i < len(list); i++ {
		r := rep.Results[i]
		if !r.Cancelled || r.Proved {
			t.Errorf("post-cancel obligation %d: cancelled=%v proved=%v, want drained (cancelled, unproved)",
				i, r.Cancelled, r.Proved)
		}
	}
	waitGoroutines(t, base)
}

// TestPipelineCancelDrainsAllWorkers runs wide pools against an
// already-fired context: every worker must drain its share (all results
// filled, all cancelled) and exit — goroutine-count before and after
// must agree.
func TestPipelineCancelDrainsAllWorkers(t *testing.T) {
	base := runtime.NumGoroutine()
	obls := randObligations(11, 40)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{2, 4, 8} {
		rep := NewPipeline(Options{Workers: workers}).Run(ctx, obls)
		if len(rep.Results) != len(obls) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(rep.Results), len(obls))
		}
		if !rep.Cancelled {
			t.Errorf("workers=%d: report not marked Cancelled", workers)
		}
		for i, r := range rep.Results {
			if !r.Cancelled || r.Proved || r.Cached {
				t.Errorf("workers=%d result %d: %+v, want cancelled/unproved/uncached", workers, i, r)
			}
		}
	}
	waitGoroutines(t, base)
}

// TestPipelineCancelledResultsNotCached: a cancelled obligation must not
// poison the result cache — a later uncancelled run has to prove it for
// real, and replaying the same batch must not serve "cancelled" as a
// cache hit.
func TestPipelineCancelledResultsNotCached(t *testing.T) {
	obls := randObligations(3, 6)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pl := NewPipeline(Options{Workers: 2, Cache: true})
	rep := pl.Run(ctx, append(append([]Obligation{}, obls...), obls...))
	for i, r := range rep.Results {
		if r.Cached {
			t.Errorf("duplicate %d of a cancelled batch served from cache: %+v", i, r)
		}
	}
	// The same pipeline, uncancelled: real proofs, matching the oracle.
	fresh := pl.Run(context.Background(), obls)
	oracle := NewPipeline(Options{Workers: 1}).Run(context.Background(), obls)
	for i := range obls {
		sameOutcome(t, "after-cancel", oracle.Results[i], fresh.Results[i])
		if fresh.Results[i].Cancelled {
			t.Errorf("uncancelled rerun result %d still marked Cancelled", i)
		}
	}
}

// TestProverRunScriptCtxCancel exercises the prover-level boundary
// directly: a cancelled script run reports ErrCancelled and leaves the
// proof open (never QED).
func TestProverRunScriptCtxCancel(t *testing.T) {
	obls := randObligations(9, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pl := NewPipeline(Options{Workers: 1})
	rep := pl.Run(ctx, obls)
	r := rep.Results[0]
	if r.Proved || !r.Cancelled {
		t.Fatalf("pre-cancelled obligation: %+v, want cancelled and unproved", r)
	}
	if r.Err != "cancelled" {
		t.Errorf("Err = %q, want %q", r.Err, "cancelled")
	}
}
