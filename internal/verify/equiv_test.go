package verify

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/logic"
	"repro/internal/prover"
)

// The equivalence tests pit the interned parallel pipeline against the
// retained seed kernel (prover.SeqProve's structural, sequential prover)
// on randomized proof obligations: verdicts and step counts must agree
// exactly, with the cache on and off and at every worker count. This is
// the soundness regression net for the hash-consing refactor — interning,
// memoization, and branch parallelism are only allowed to change speed,
// never what is proved or how many inferences it takes.

type eqRng struct{ s uint64 }

func (r *eqRng) next() uint64 {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	return r.s >> 11
}

func (r *eqRng) intn(n int) int { return int(r.next() % uint64(n)) }

// randEqTerm builds ground terms over a few integer constants and the
// uninterpreted functions f (unary) and g (binary), the fragment the
// congruence-closure engines chew on.
func randEqTerm(r *eqRng, depth int) logic.Term {
	if depth <= 0 || r.intn(3) == 0 {
		return logic.IntT(int64(r.intn(4)))
	}
	if r.intn(2) == 0 {
		return logic.Fn("f", randEqTerm(r, depth-1))
	}
	return logic.Fn("g", randEqTerm(r, depth-1), randEqTerm(r, depth-1))
}

// randEqFormula builds propositional combinations of ground predicate
// atoms and equalities — goals that drive flatten, split, the congruence
// engine, and grind's backtracking search. Validity is irrelevant: the
// kernels must agree on provable and unprovable goals alike.
func randEqFormula(r *eqRng, depth int) logic.Formula {
	if depth <= 0 || r.intn(4) == 0 {
		if r.intn(2) == 0 {
			return logic.Eq{L: randEqTerm(r, 2), R: randEqTerm(r, 2)}
		}
		preds := []string{"p", "q", "rr"}
		return logic.Pred{Name: preds[r.intn(len(preds))], Args: []logic.Term{randEqTerm(r, 1)}}
	}
	switch r.intn(5) {
	case 0:
		return logic.Not{F: randEqFormula(r, depth-1)}
	case 1:
		return logic.Conj(randEqFormula(r, depth-1), randEqFormula(r, depth-1))
	case 2:
		return logic.Disj(randEqFormula(r, depth-1), randEqFormula(r, depth-1))
	case 3:
		return logic.Implies{L: randEqFormula(r, depth-1), R: randEqFormula(r, depth-1)}
	default:
		return logic.Iff{L: randEqFormula(r, depth-1), R: randEqFormula(r, depth-1)}
	}
}

// randObligations builds a deterministic batch of random theories, each
// with a couple of random axioms and one goal, discharged by the default
// skosimp*+grind script.
func randObligations(seed uint64, n int) []Obligation {
	r := &eqRng{s: seed}
	var out []Obligation
	for i := 0; i < n; i++ {
		th := logic.NewTheory(fmt.Sprintf("rand%d", i))
		for a := 0; a < 1+r.intn(2); a++ {
			th.AddAxiom(fmt.Sprintf("ax%d", a), randEqFormula(r, 2))
		}
		th.AddTheorem("goal", randEqFormula(r, 3))
		out = append(out, Obligation{
			Name:    fmt.Sprintf("rand/%d", i),
			Theory:  th,
			Theorem: "goal",
		})
	}
	return out
}

func sameOutcome(t *testing.T, ctx string, want, got Result) {
	t.Helper()
	if want.Proved != got.Proved || want.Steps != got.Steps ||
		want.PrimSteps != got.PrimSteps || want.AutoPrim != got.AutoPrim {
		t.Errorf("%s %s: seed=(proved=%v steps=%d prim=%d auto=%d) got=(proved=%v steps=%d prim=%d auto=%d)",
			ctx, want.Name,
			want.Proved, want.Steps, want.PrimSteps, want.AutoPrim,
			got.Proved, got.Steps, got.PrimSteps, got.AutoPrim)
	}
}

// TestPipelineMatchesSeedKernelOnRandomGoals is the randomized
// interned-vs-structural and sequential-vs-parallel equivalence test: the
// seed kernel's verdicts and proof-step counts are the oracle, and every
// pipeline configuration — interned sequential, interned parallel, cache
// off, cache on with duplicated obligations — must reproduce them exactly.
func TestPipelineMatchesSeedKernelOnRandomGoals(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		obls := randObligations(seed, 25)

		oracle := NewPipeline(Options{Workers: 1, Structural: true}).Run(context.Background(), obls)

		configs := []struct {
			name string
			opts Options
		}{
			{"interned_w1", Options{Workers: 1}},
			{"interned_w1_cache", Options{Workers: 1, Cache: true}},
			{"interned_w4", Options{Workers: 4}},
			{"interned_w4_cache", Options{Workers: 4, Cache: true}},
		}
		for _, cfg := range configs {
			got := NewPipeline(cfg.opts).Run(context.Background(), obls)
			for i := range obls {
				sameOutcome(t, fmt.Sprintf("seed=%d %s", seed, cfg.name), oracle.Results[i], got.Results[i])
			}
		}

		// Cache replay: duplicate the whole batch; the copies must come back
		// Cached with counts identical to the oracle's fresh proofs.
		dup := append(append([]Obligation{}, obls...), obls...)
		got := NewPipeline(Options{Workers: 4, Cache: true}).Run(context.Background(), dup)
		if got.Cached() != len(obls) {
			t.Errorf("seed=%d: duplicated batch cached %d obligations, want %d", seed, got.Cached(), len(obls))
		}
		for i := range obls {
			sameOutcome(t, fmt.Sprintf("seed=%d dup-orig", seed), oracle.Results[i], got.Results[i])
			sameOutcome(t, fmt.Sprintf("seed=%d dup-copy", seed), oracle.Results[i], got.Results[i+len(obls)])
			if !got.Results[i+len(obls)].Cached {
				t.Errorf("seed=%d: duplicate %d not served from cache", seed, i)
			}
		}
	}
}

// TestGrindWorkersMatchSeqProve exercises the other parallelism axis —
// concurrent split branches inside one grind call — against the seed
// sequential prover on the same random goals.
func TestGrindWorkersMatchSeqProve(t *testing.T) {
	obls := randObligations(1234, 40)
	for _, ob := range obls {
		seq, seqErr := prover.SeqProve(ob.Theory, ob.Theorem, DefaultScript)

		p, err := prover.New(ob.Theory, ob.Theorem)
		if err != nil {
			t.Fatalf("%s: %v", ob.Name, err)
		}
		p.EnableWorkers(4)
		runErr := p.RunScript(DefaultScript)
		par := p.Summary()

		if (seqErr == nil) != (runErr == nil && par.QED) {
			t.Errorf("%s: seed proved=%v (err=%v), parallel proved=%v (err=%v)",
				ob.Name, seqErr == nil, seqErr, runErr == nil && par.QED, runErr)
			continue
		}
		if seq.Steps != par.Steps || seq.PrimSteps != par.PrimSteps || seq.AutoPrim != par.AutoPrim {
			t.Errorf("%s: seed steps=%d prim=%d auto=%d, parallel steps=%d prim=%d auto=%d",
				ob.Name, seq.Steps, seq.PrimSteps, seq.AutoPrim, par.Steps, par.PrimSteps, par.AutoPrim)
		}
	}
}

// TestStandardSuiteKernelsAgree runs the full standard suite under the
// seed kernel and the interned parallel pipeline: everything proves under
// both, with identical step counts, and the lex product's factor laws hit
// the cache.
func TestStandardSuiteKernelsAgree(t *testing.T) {
	obls, err := StandardSuite()
	if err != nil {
		t.Fatal(err)
	}
	oracle := NewPipeline(Options{Workers: 1, Structural: true}).Run(context.Background(), obls)
	if !oracle.AllProved() {
		t.Fatalf("seed kernel failed %d obligations", oracle.Failed())
	}
	got := NewPipeline(Options{Workers: 4, Cache: true}).Run(context.Background(), obls)
	if !got.AllProved() {
		t.Fatalf("interned pipeline failed %d obligations", got.Failed())
	}
	for i := range obls {
		sameOutcome(t, "suite", oracle.Results[i], got.Results[i])
	}
	if got.Cached() == 0 {
		t.Error("standard suite produced no cache hits (factor laws should dedupe)")
	}
}
