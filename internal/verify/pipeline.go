// Package verify is the unified proof-obligation pipeline of the FVN
// verification stack (arcs 4–6 of Figure 1): it collects named proof
// obligations from the three producers — translate (NDlog→inductive-
// definition theories), metarouting (algebra laws), and component
// (property-preservation checks) — and discharges them on a worker pool
// with a result cache keyed by interned-formula id plus theory
// fingerprint, so identical obligations (shared algebra laws across
// composed algebras, repeated goals across suites) are proved once.
package verify

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/logic"
	"repro/internal/obs"
	"repro/internal/prover"
)

// Obligation is one named unit of verification work. Exactly one of the
// two payloads is set:
//
//   - a theorem obligation carries a Theory, a Theorem name, and a proof
//     Script (empty = "(skosimp*) (grind)");
//   - a check obligation carries a Check function (e.g. a metarouting
//     algebra law) plus a CheckKey identifying it for the cache.
type Obligation struct {
	Name string

	Theory  *logic.Theory
	Theorem string
	Script  string

	Check    func() error
	CheckKey string
}

// Result is the outcome of one obligation.
type Result struct {
	Name      string
	Proved    bool
	Cached    bool // satisfied by the result cache, not a fresh proof
	Cancelled bool // context fired before (or while) this obligation ran
	Err       string
	Steps     int
	PrimSteps int
	AutoPrim  int
	Elapsed   time.Duration
}

// Report is the outcome of a pipeline run, results in input order.
type Report struct {
	Results []Result
	Elapsed time.Duration
	// Cancelled marks a run cut short by its context: every obligation
	// still has a Result (completed ones are real, the rest are marked
	// Cancelled), but the report is partial, not a verdict on the suite.
	Cancelled bool
}

// Proved counts discharged obligations (including cached ones).
func (r Report) Proved() int {
	n := 0
	for _, res := range r.Results {
		if res.Proved {
			n++
		}
	}
	return n
}

// Cached counts obligations satisfied from the result cache.
func (r Report) Cached() int {
	n := 0
	for _, res := range r.Results {
		if res.Cached {
			n++
		}
	}
	return n
}

// Failed counts undischarged obligations.
func (r Report) Failed() int { return len(r.Results) - r.Proved() }

// AllProved reports whether every obligation was discharged.
func (r Report) AllProved() bool { return r.Failed() == 0 }

// WriteTable renders the per-obligation results.
func (r Report) WriteTable(w io.Writer) {
	for _, res := range r.Results {
		status := "proved"
		if res.Cancelled {
			status = "cancelled"
		} else if !res.Proved {
			status = "FAILED"
		}
		cached := ""
		if res.Cached {
			cached = " (cached)"
		}
		fmt.Fprintf(w, "  %-52s %s%s  steps=%d prim=%d  %v\n",
			res.Name, status, cached, res.Steps, res.PrimSteps, res.Elapsed.Round(time.Microsecond))
		if res.Err != "" {
			fmt.Fprintf(w, "      %s\n", res.Err)
		}
	}
	fmt.Fprintf(w, "  %d obligations: %d proved (%d cached), %d failed, %v\n",
		len(r.Results), r.Proved(), r.Cached(), r.Failed(), r.Elapsed.Round(time.Microsecond))
}

// Options configures a Pipeline.
type Options struct {
	// Workers bounds concurrent obligation discharge (<=1 = sequential).
	Workers int
	// Cache enables the cross-obligation result cache. Identical
	// obligations — same theory fingerprint, interned goal id, and script
	// — are proved once; later ones replay the recorded verdict and step
	// counts. Ignored under Structural (the seed kernel has no interned
	// ids to key by).
	Cache bool
	// Structural discharges theorem obligations with the seed structural
	// kernel (SeqProve's kernel) instead of the interned one — the oracle
	// configuration for equivalence tests.
	Structural bool
	// Persist, when non-nil, backs the result cache with a persistent
	// store shared across pipelines, requests, and processes (see
	// internal/cache). Setting it implies Cache (unless Structural).
	// Cancelled results are never persisted.
	Persist *cache.Store

	// Observability (optional): obligation counters land in component
	// "verify"; per-obligation durations in the MObligationMs histogram.
	Col *obs.Collector
	// Tracer receives per-tactic proof events. Only attached when
	// Workers <= 1 (trace sinks are not synchronized).
	Tracer *obs.Tracer
}

// Pipeline discharges obligations. The result cache persists across Run
// calls, so a second Run over an overlapping suite replays prior proofs.
type Pipeline struct {
	opts Options

	mu   sync.Mutex
	thms map[thmKey]Result
	chks map[string]Result
}

type thmKey struct {
	theory uint64 // logic.TheoryFingerprint
	goal   uint64 // interned goal id
	script uint64
}

// NewPipeline creates a pipeline with the given options.
func NewPipeline(opts Options) *Pipeline {
	if opts.Persist != nil {
		opts.Cache = true
	}
	if opts.Structural {
		opts.Cache = false
		opts.Persist = nil
	}
	return &Pipeline{opts: opts, thms: map[thmKey]Result{}, chks: map[string]Result{}}
}

// DefaultScript is the automation fallback for theorem obligations without
// an explicit proof script.
const DefaultScript = "(skosimp*) (grind)"

// Run discharges the obligations and returns their results in input order.
// Scheduling cannot change results: duplicate obligations are grouped
// before the pool starts (the first occurrence proves, the rest replay),
// and each proof is a deterministic function of its obligation.
//
// ctx bounds the run. On cancellation the pool drains: every worker exits
// after its current obligation reaches the next coarse boundary (script
// command / grind sub-goal), no goroutine outlives Run, and the report
// comes back partial — completed results intact, the remainder marked
// Cancelled — with Report.Cancelled set. Cancelled results are never
// cached or persisted.
func (pl *Pipeline) Run(ctx context.Context, obls []Obligation) Report {
	start := time.Now()

	// Intern each distinct theory once, up front, so pool workers share
	// read-only interned structures.
	if !pl.opts.Structural {
		seen := map[*logic.Theory]bool{}
		for _, ob := range obls {
			if ob.Theory != nil && !seen[ob.Theory] {
				seen[ob.Theory] = true
				logic.InternTheory(ob.Theory)
			}
		}
	}

	results := make([]Result, len(obls))
	var run []int // indices that need a fresh proof
	// rep[i] >= 0 marks i a duplicate of the earlier index rep[i].
	rep := make([]int, len(obls))
	if pl.opts.Cache {
		group := map[interface{}]int{}
		for i, ob := range obls {
			key := pl.key(ob)
			if key == nil {
				rep[i] = -1
				run = append(run, i)
				continue
			}
			if cached, ok := pl.cacheGet(key); ok {
				rep[i] = -1
				results[i] = replay(cached, ob.Name)
				continue
			}
			if j, ok := group[key]; ok {
				rep[i] = j
				continue
			}
			group[key] = i
			rep[i] = -1
			run = append(run, i)
		}
	} else {
		for i := range obls {
			rep[i] = -1
			run = append(run, i)
		}
	}

	// Discharge the fresh obligations on the pool.
	workers := pl.opts.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(run) {
		workers = len(run)
	}
	if workers <= 1 {
		for _, i := range run {
			results[i] = pl.run1(ctx, obls[i])
		}
	} else {
		// Every index is sent regardless of cancellation and every worker
		// drains the channel: run1 short-circuits on a fired context, so a
		// cancelled run completes the dispatch loop in microseconds with
		// all workers joined — no goroutine leaks, no unfilled results.
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					results[i] = pl.run1(ctx, obls[i])
				}
			}()
		}
		for _, i := range run {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}

	// Store fresh results in the cache and replay duplicates. A duplicate
	// of a cancelled first occurrence is itself cancelled, not cached.
	if pl.opts.Cache {
		for _, i := range run {
			if results[i].Cancelled {
				continue
			}
			if key := pl.key(obls[i]); key != nil {
				pl.cachePut(key, results[i])
			}
		}
		for i := range obls {
			if j := rep[i]; j >= 0 {
				results[i] = replay(results[j], obls[i].Name)
			}
		}
	}

	if c := pl.opts.Col; c != nil {
		var cached, failed int64
		for _, res := range results {
			if res.Cached {
				cached++
			}
			if !res.Proved {
				failed++
			}
			c.Histogram("verify", obs.MObligationMs, res.Name).Observe(res.Elapsed)
		}
		c.Counter("verify", obs.MObligations, "").Add(int64(len(results)))
		c.Counter("verify", obs.MObligationsCached, "").Add(cached)
		c.Counter("verify", obs.MObligationsFailed, "").Add(failed)
	}

	rep2 := Report{Results: results, Elapsed: time.Since(start)}
	for _, res := range results {
		if res.Cancelled {
			rep2.Cancelled = true
			break
		}
	}
	return rep2
}

// replay turns a proved-once result into the duplicate's: same verdict and
// step counts (exactly what re-proving would have produced), marked Cached.
// A cancelled first occurrence propagates as cancelled, not cached.
func replay(src Result, name string) Result {
	src.Name = name
	src.Elapsed = 0
	if !src.Cancelled {
		src.Cached = true
	}
	return src
}

// key computes the cache identity of an obligation, or nil when it has
// none. Theorem keys combine the theory fingerprint (inductives + axioms),
// the interned goal id, and the script; interning cannot conflate distinct
// goals (ids are assigned by full structural comparison), so equal keys
// mean provably interchangeable obligations.
func (pl *Pipeline) key(ob Obligation) interface{} {
	if ob.Check != nil {
		if ob.CheckKey == "" {
			return nil
		}
		return ob.CheckKey
	}
	if ob.Theory == nil {
		return nil
	}
	thm, ok := ob.Theory.TheoremByName(ob.Theorem)
	if !ok {
		return nil
	}
	goal := logic.FormulaID(logic.InternFormula(thm.Goal))
	script := ob.Script
	if script == "" {
		script = DefaultScript
	}
	var sh uint64 = 14695981039346656037
	for i := 0; i < len(script); i++ {
		sh ^= uint64(script[i])
		sh *= 1099511628211
	}
	return thmKey{theory: logic.TheoryFingerprint(ob.Theory), goal: goal, script: sh}
}

// persistKey renders a cache key for the persistent store. Theorem keys
// carry the theory fingerprint, interned goal id, and script hash; check
// keys are namespaced verbatim.
func persistKey(key interface{}) string {
	switch k := key.(type) {
	case thmKey:
		return fmt.Sprintf("thm1:%016x:%016x:%016x", k.theory, k.goal, k.script)
	case string:
		return "chk1:" + k
	}
	return ""
}

// persisted is the durable subset of a Result: identity-independent proof
// outcome and step counts. Name and Elapsed are per-occurrence.
type persisted struct {
	Proved    bool   `json:"proved"`
	Err       string `json:"err,omitempty"`
	Steps     int    `json:"steps,omitempty"`
	PrimSteps int    `json:"prim,omitempty"`
	AutoPrim  int    `json:"auto,omitempty"`
}

func (pl *Pipeline) cacheGet(key interface{}) (Result, bool) {
	pl.mu.Lock()
	switch k := key.(type) {
	case thmKey:
		if r, ok := pl.thms[k]; ok {
			pl.mu.Unlock()
			return r, true
		}
	case string:
		if r, ok := pl.chks[k]; ok {
			pl.mu.Unlock()
			return r, true
		}
	}
	pl.mu.Unlock()
	// Fall through to the persistent store (its own lock): a hit is
	// promoted into the in-memory maps so repeats stay map lookups.
	if pl.opts.Persist == nil {
		return Result{}, false
	}
	var pv persisted
	if !pl.opts.Persist.Get(persistKey(key), &pv) {
		return Result{}, false
	}
	r := Result{
		Proved:    pv.Proved,
		Err:       pv.Err,
		Steps:     pv.Steps,
		PrimSteps: pv.PrimSteps,
		AutoPrim:  pv.AutoPrim,
	}
	pl.mu.Lock()
	switch k := key.(type) {
	case thmKey:
		pl.thms[k] = r
	case string:
		pl.chks[k] = r
	}
	pl.mu.Unlock()
	return r, true
}

func (pl *Pipeline) cachePut(key interface{}, r Result) {
	pl.mu.Lock()
	switch k := key.(type) {
	case thmKey:
		pl.thms[k] = r
	case string:
		pl.chks[k] = r
	}
	pl.mu.Unlock()
	if pl.opts.Persist != nil {
		// Append errors do not fail the proof: the result is still correct,
		// the entry is just not durable.
		_ = pl.opts.Persist.Put(persistKey(key), persisted{
			Proved:    r.Proved,
			Err:       r.Err,
			Steps:     r.Steps,
			PrimSteps: r.PrimSteps,
			AutoPrim:  r.AutoPrim,
		})
	}
}

// run1 discharges one obligation from scratch. A context that has already
// fired short-circuits to a Cancelled result; one that fires mid-proof
// stops the script at its next command/sub-goal boundary.
func (pl *Pipeline) run1(ctx context.Context, ob Obligation) Result {
	t0 := time.Now()
	if ctx.Err() != nil {
		return Result{Name: ob.Name, Cancelled: true, Err: "cancelled"}
	}
	if ob.Check != nil {
		err := ob.Check()
		res := Result{Name: ob.Name, Proved: err == nil, Elapsed: time.Since(t0)}
		if err != nil {
			res.Err = err.Error()
		}
		return res
	}

	p, err := prover.New(ob.Theory, ob.Theorem)
	if err != nil {
		return Result{Name: ob.Name, Err: err.Error(), Elapsed: time.Since(t0)}
	}
	if pl.opts.Structural {
		p.UseSeedKernel()
	}
	tr := pl.opts.Tracer
	if pl.opts.Workers > 1 {
		tr = nil
	}
	if pl.opts.Col != nil || tr != nil {
		p.Instrument(pl.opts.Col, tr)
	}
	script := ob.Script
	if script == "" {
		script = DefaultScript
	}
	runErr := p.RunScriptCtx(ctx, script)
	sum := p.Summary()
	res := Result{
		Name:      ob.Name,
		Proved:    runErr == nil && sum.QED,
		Steps:     sum.Steps,
		PrimSteps: sum.PrimSteps,
		AutoPrim:  sum.AutoPrim,
		Elapsed:   time.Since(t0),
	}
	if ctx.Err() != nil && !sum.QED {
		// The context fired while this obligation ran: its non-QED outcome
		// reflects interruption, not a refuted goal.
		res.Cancelled = true
		res.Proved = false
		res.Err = "cancelled"
		return res
	}
	if runErr != nil {
		res.Err = runErr.Error()
	} else if !sum.QED {
		res.Err = fmt.Sprintf("%d goals remain open", sum.OpenGoals)
	}
	return res
}
