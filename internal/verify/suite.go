package verify

import (
	"fmt"

	"repro/internal/component"
	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/metarouting"
)

// TheoryObligations emits one theorem obligation per theorem declared in
// the theory, in declaration order, named "<prefix>/<theorem>". Scripts
// come from the map (missing entries fall back to DefaultScript).
func TheoryObligations(prefix string, th *logic.Theory, scripts map[string]string) []Obligation {
	var out []Obligation
	for _, thm := range th.Theorems {
		out = append(out, Obligation{
			Name:    prefix + "/" + thm.Name,
			Theory:  th,
			Theorem: thm.Name,
			Script:  scripts[thm.Name],
		})
	}
	return out
}

// AlgebraObligations emits the seven metarouting law checks for the
// algebra, then recurses into its factors (lexical products expose both
// components, restrictions their base algebra), so a composition also
// discharges its constituents' laws. The CheckKey is the algebra name plus
// the law, so a factor shared between compositions — or appearing both
// standalone and inside a product — is checked once under the cache.
func AlgebraObligations(a metarouting.Algebra) []Obligation {
	var out []Obligation
	for _, law := range metarouting.Obligations() {
		law := law
		out = append(out, Obligation{
			Name: "algebra/" + a.Name() + "/" + law.Name,
			Check: func() error {
				if c := law.Check(a); c != nil {
					return c
				}
				return nil
			},
			CheckKey: "alg:" + a.Name() + ":" + law.Name,
		})
	}
	if f, ok := a.(interface{ Factors() []metarouting.Algebra }); ok {
		for _, sub := range f.Factors() {
			out = append(out, AlgebraObligations(sub)...)
		}
	}
	return out
}

// ComponentObligations emits the component-model property-preservation
// obligations of §3.2 (the BGP component theory's generated optimality
// theorem plus the hand-stated preservation theorems).
func ComponentObligations() ([]Obligation, error) {
	th, scripts, err := component.VerificationTheory()
	if err != nil {
		return nil, fmt.Errorf("component theory: %w", err)
	}
	return TheoryObligations("component", th, scripts), nil
}

// pathVectorScripts is the E12 proof corpus (§4.3) for the translated
// path-vector protocol.
var pathVectorScripts = map[string]string{
	"bestPathStrong":     core.BestPathStrongScript,
	"bestPathCostStrong": `(skosimp*) (expand "bestPathCost") (flatten) (grind)`,
	"pathCostPositive": `
		(induct "path")
		(skosimp*) (lemma "linkCostPositive") (inst -3 S!1 D!1 C!1) (assert)
		(skosimp*) (lemma "linkCostPositive") (inst -7 S!2 Z!1 C1!1) (assert)`,
	"pathDestination": core.PathDestinationScript,
	"pathSource":      `(induct "path") (skosimp*) (assert) (skosimp*) (assert)`,
	"pathLen2":        `(induct "path") (skosimp*) (assert) (skosimp*) (assert)`,
}

// PathVectorObligations emits the translate-producer obligations: the
// path-vector NDlog program's generated theory extended with the E12 proof
// corpus (safety lemmas proved by induction over the generated inductive
// definitions).
func PathVectorObligations() ([]Obligation, error) {
	p, err := core.PathVector()
	if err != nil {
		return nil, fmt.Errorf("pathvector protocol: %w", err)
	}
	th := p.Theory
	th.AddAxiom("linkCostPositive", core.LinkCostPositive())
	th.AddTheorem("pathCostPositive", core.PathCostPositive())
	th.AddTheorem("pathDestination", core.PathDestination())
	th.AddTheorem("pathSource", core.PathSource())
	th.AddTheorem("pathLen2", core.PathLengthAtLeastTwo())
	return TheoryObligations("pathvector", th, pathVectorScripts), nil
}

// StandardSuite collects the full verification workload from all three
// producers: the translated path-vector theory with its proof corpus, the
// component-model preservation theorems, and the metarouting algebra
// library (bases plus a lexical product whose factor laws the cache shares
// with the standalone bases).
func StandardSuite() ([]Obligation, error) {
	var out []Obligation
	pv, err := PathVectorObligations()
	if err != nil {
		return nil, err
	}
	out = append(out, pv...)
	comp, err := ComponentObligations()
	if err != nil {
		return nil, err
	}
	out = append(out, comp...)
	for _, a := range metarouting.BaseAlgebras() {
		out = append(out, AlgebraObligations(a)...)
	}
	// lexProduct[addA[8,3],hopCountA[8]] discharges all seven laws, and its
	// factors carry the same names as two base-library entries, so their 14
	// law checks hit the cache when it is enabled.
	out = append(out, AlgebraObligations(metarouting.LexProduct(metarouting.AddA(8, 3), metarouting.HopCountA(8)))...)
	return out, nil
}
