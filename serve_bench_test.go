// Service and cancellation-plumbing benchmarks for PR7: verify-suite
// throughput through fvn serve with the result cache cold vs warm, and
// the cost of the context plumbing threaded through the hot loops.
package repro_test

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/netgraph"
	"repro/internal/serve"
)

// BenchmarkServeThroughput measures one full verify-suite job through
// the HTTP service. "uncached" disables result reuse per request, so
// every job re-proves the suite; "cached" warms the cache once and then
// serves every obligation from it — the steady-state cost of a
// resubmitted suite.
func BenchmarkServeThroughput(b *testing.B) {
	run := func(b *testing.B, body string, warm bool) {
		s, err := serve.New(serve.Options{MaxConcurrent: 8})
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		defer s.Shutdown(context.Background())
		post := func() {
			resp, err := http.Post(ts.URL+"/verify", "application/json", strings.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("status %d", resp.StatusCode)
			}
		}
		if warm {
			post()
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			post()
		}
	}
	b.Run("uncached", func(b *testing.B) { run(b, `{"cache": false}`, false) })
	b.Run("cached", func(b *testing.B) { run(b, `{}`, true) })
}

// BenchmarkCtxPlumbing measures a full simulation run through the
// context-aware event loop: "background" is the disabled path (no
// Done channel, the per-event gate is a nil check), "cancellable" a
// live context that never fires. The two must allocate identically —
// internal/dist's TestCtxBackgroundPathNoExtraAllocs pins that.
func BenchmarkCtxPlumbing(b *testing.B) {
	for _, bc := range []struct {
		name string
		ctx  func() (context.Context, context.CancelFunc)
	}{
		{"background", func() (context.Context, context.CancelFunc) {
			return context.Background(), func() {}
		}},
		{"cancellable", func() (context.Context, context.CancelFunc) {
			return context.WithCancel(context.Background())
		}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			p, err := core.PathVector()
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				net, err := p.Execute(netgraph.Ring(5), dist.DefaultOptions())
				if err != nil {
					b.Fatal(err)
				}
				ctx, cancel := bc.ctx()
				r, err := net.RunCtx(ctx)
				cancel()
				if err != nil || !r.Converged {
					b.Fatalf("run: converged=%v err=%v", r.Converged, err)
				}
			}
		})
	}
}
